"""Viscous stress tensor, heat fluxes, and halo-extended gradients."""

import numpy as np
import pytest

from repro import constants
from repro.grid import Grid
from repro.physics.viscous import (
    field_gradients,
    stress_tensor,
    viscous_fluxes,
)


@pytest.fixture
def grid():
    return Grid(nx=16, nr=12, length_x=2.0, length_r=1.0)


class TestStressTensor:
    def test_uniform_flow_has_no_stress(self, grid):
        shape = grid.shape
        u = np.full(shape, 1.5)
        v = np.zeros(shape)
        T = np.ones(shape)
        terms = stress_tensor(u, v, T, grid.r, grid.dx, grid.dr, mu=1e-3)
        for f in (terms.tau_xx, terms.tau_rr, terms.tau_xr,
                  terms.heat_x, terms.heat_r):
            assert np.allclose(f, 0.0, atol=1e-14)
        # tau_tt has a v/r term: zero here too.
        assert np.allclose(terms.tau_tt, 0.0, atol=1e-14)

    def test_pure_axial_shear(self, grid):
        """u = a*r gives tau_xr = mu*a and no normal stresses."""
        a, mu = 0.8, 2e-3
        u = a * grid.rmesh().copy()
        v = np.zeros(grid.shape)
        T = np.ones(grid.shape)
        terms = stress_tensor(u, v, T, grid.r, grid.dx, grid.dr, mu=mu)
        interior = (slice(2, -2), slice(2, -2))
        assert np.allclose(terms.tau_xr[interior], mu * a, rtol=1e-10)
        assert np.allclose(terms.tau_xx[interior], 0.0, atol=1e-12)

    def test_linear_expansion_normal_stresses(self, grid):
        """u = a*x: tau_xx = mu(2a - 2a/3), tau_rr = tau_tt = -2/3 mu a."""
        a, mu = 0.5, 1e-2
        u = a * grid.xmesh().copy()
        v = np.zeros(grid.shape)
        T = np.ones(grid.shape)
        terms = stress_tensor(u, v, T, grid.r, grid.dx, grid.dr, mu=mu)
        interior = (slice(2, -2), slice(2, -2))
        assert np.allclose(terms.tau_xx[interior], mu * a * 4 / 3, rtol=1e-9)
        assert np.allclose(terms.tau_rr[interior], -mu * a * 2 / 3, rtol=1e-9)
        assert np.allclose(terms.tau_tt[interior], -mu * a * 2 / 3, rtol=1e-9)

    def test_stokes_hypothesis_trace(self, grid, rng):
        """tau_xx + tau_rr + tau_tt = 2 mu (Theta) - 2 mu Theta = 0."""
        u = rng.random(grid.shape)
        v = rng.random(grid.shape) * grid.rmesh()  # keep v/r smooth
        T = 1.0 + 0.1 * rng.random(grid.shape)
        terms = stress_tensor(u, v, T, grid.r, grid.dx, grid.dr, mu=1e-3)
        trace = terms.tau_xx + terms.tau_rr + terms.tau_tt
        assert np.allclose(trace, 0.0, atol=1e-12)

    def test_heat_flux_down_gradient(self, grid):
        T = grid.xmesh().copy()  # dT/dx = 1
        u = v = np.zeros(grid.shape)
        terms = stress_tensor(u, v, T, grid.r, grid.dx, grid.dr, mu=1e-3)
        k = 1e-3 / ((constants.GAMMA - 1) * constants.PRANDTL)
        assert np.allclose(terms.heat_x, -k, rtol=1e-9)
        assert np.allclose(terms.heat_r, 0.0, atol=1e-14)


class TestHaloGradients:
    def test_halo_reproduces_interior_arithmetic(self, grid, rng):
        """Gradients of a slab with ghost columns == global gradients."""
        u = rng.random(grid.shape)
        v = rng.random(grid.shape)
        T = rng.random(grid.shape)
        full = field_gradients(u, v, T, grid.dx, grid.dr)

        lo, hi = 5, 11
        halo_lo = np.stack([u[lo - 1], v[lo - 1], T[lo - 1]])
        halo_hi = np.stack([u[hi], v[hi], T[hi]])
        slab = field_gradients(
            u[lo:hi], v[lo:hi], T[lo:hi], grid.dx, grid.dr,
            halo_lo=halo_lo, halo_hi=halo_hi,
        )
        for g_full, g_slab in zip(full, slab):
            assert np.array_equal(g_full[lo:hi], g_slab)

    def test_one_sided_halo(self, grid, rng):
        """A slab at the domain edge extends only inward."""
        u = rng.random(grid.shape)
        v = rng.random(grid.shape)
        T = rng.random(grid.shape)
        full = field_gradients(u, v, T, grid.dx, grid.dr)
        hi = 6
        halo_hi = np.stack([u[hi], v[hi], T[hi]])
        slab = field_gradients(
            u[:hi], v[:hi], T[:hi], grid.dx, grid.dr, halo_hi=halo_hi
        )
        for g_full, g_slab in zip(full, slab):
            assert np.array_equal(g_full[:hi], g_slab)


class TestViscousFluxes:
    def test_structure(self, grid, rng):
        u = rng.random(grid.shape)
        v = rng.random(grid.shape)
        T = 1.0 + rng.random(grid.shape)
        terms = stress_tensor(u, v, T, grid.r, grid.dx, grid.dr, mu=1e-3)
        Fv, Gv = viscous_fluxes(u, v, terms)
        assert np.allclose(Fv[0], 0) and np.allclose(Gv[0], 0)
        assert np.array_equal(Fv[1], terms.tau_xx)
        assert np.array_equal(Fv[2], terms.tau_xr)
        assert np.array_equal(Gv[1], terms.tau_xr)
        assert np.array_equal(Gv[2], terms.tau_rr)
        # Energy flux: work of stresses minus conduction.
        assert np.allclose(
            Fv[3], u * terms.tau_xx + v * terms.tau_xr - terms.heat_x
        )
