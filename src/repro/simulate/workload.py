"""Application workload descriptions (the paper's Table 1).

A :class:`Workload` captures what one SPMD rank does per time step: compute
segments interleaved with neighbour messages.  Two sources:

* :meth:`Workload.paper` — the paper's measured application
  characteristics (Table 1: 145,000 / 77,000 MFLOP total; 80,000 / 60,000
  startups and 125 / 95 MB per processor over 5000 steps).  This is the
  default for all figure reproductions: it is the workload the original
  experiments actually presented to the machines.
* :meth:`Workload.measured` — characteristics measured from *this
  package's own* distributed solver (per-rank
  :class:`~repro.msglib.api.CommStats` from a real run), for the honest
  cross-check recorded in EXPERIMENTS.md.  Our halo plan exchanges somewhat
  more than the 1995 code (the fourth-difference filter's state halo and
  both-phase velocity/temperature ghosts), so the derived volumes are
  larger; the ratios and scaling shapes match.

Startup counting: Table 1's per-processor startups divided by 5000 steps
give 16 (NS) and 12 (Euler) per step — consistent with counting each send
*and* each receive at an interior rank with two neighbours (8 and 6 sends
per step respectively).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants


@dataclass(frozen=True)
class Application:
    """Whole-run application characteristics (paper Table 1)."""

    name: str
    total_flops: float
    startups_per_proc: int
    volume_bytes_per_proc: float
    steps: int = constants.PAPER_STEPS
    grid_cells: int = constants.PAPER_NX * constants.PAPER_NR

    @property
    def flops_per_step(self) -> float:
        return self.total_flops / self.steps

    @property
    def sends_per_step(self) -> float:
        """Interior-rank sends per step (startups count sends + receives)."""
        return self.startups_per_proc / (2 * self.steps)

    @property
    def bytes_per_send(self) -> float:
        return self.volume_bytes_per_proc / self.steps / self.sends_per_step


NAVIER_STOKES = Application(
    name="Navier-Stokes",
    total_flops=constants.PAPER_TOTAL_FLOPS_NS,
    startups_per_proc=constants.PAPER_STARTUPS_NS,
    volume_bytes_per_proc=constants.PAPER_VOLUME_NS_MB * constants.MB,
)

EULER = Application(
    name="Euler",
    total_flops=constants.PAPER_TOTAL_FLOPS_EULER,
    startups_per_proc=constants.PAPER_STARTUPS_EULER,
    volume_bytes_per_proc=constants.PAPER_VOLUME_EULER_MB * constants.MB,
)


@dataclass(frozen=True)
class Message:
    """One neighbour message an interior rank sends each step."""

    direction: str
    """'L' (to the left/upstream neighbour) or 'R'."""
    nbytes: int
    kind: str
    """'uvT' (velocity/temperature), 'flux' (stencil columns), 'state'
    (filter halo), 'q' (conservative columns).  Version 7 splits 'flux'
    messages into single columns."""


@dataclass(frozen=True)
class StepPhase:
    """A compute segment followed by its phase-boundary messages."""

    compute_fraction: float
    messages: tuple[Message, ...] = ()


@dataclass(frozen=True)
class Workload:
    """Per-step, per-rank workload: phases of compute + messages."""

    app: Application
    phases: tuple[StepPhase, ...]
    source: str = "paper"

    def __post_init__(self) -> None:
        total = sum(ph.compute_fraction for ph in self.phases)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"compute fractions sum to {total}, expected 1")

    # -- derived quantities ---------------------------------------------------
    def flops_per_step_per_rank(self, nprocs: int) -> float:
        return self.app.flops_per_step / nprocs

    def sends_per_step(self) -> int:
        """Interior-rank sends per step."""
        return sum(len(ph.messages) for ph in self.phases)

    def volume_per_step(self) -> float:
        """Interior-rank bytes sent per step."""
        return float(sum(m.nbytes for ph in self.phases for m in ph.messages))

    def working_set_bytes(self, nprocs: int) -> float:
        """Per-rank sweep working set: local cells x ~10 live double arrays."""
        return self.app.grid_cells / nprocs * 8.0 * 10.0

    # -- constructors -----------------------------------------------------------
    @classmethod
    def paper(cls, app: Application) -> "Workload":
        """The paper's Table-1 communication structure.

        Navier-Stokes (8 sends/step): two velocity/temperature exchanges
        (both directions each, around the predictor and corrector), one
        grouped flux-column message per one-sided phase, and the
        conservative-state halo.  Euler (6 sends/step): no
        velocity/temperature messages.  Message sizes split the Table-1
        per-step volume evenly (the paper reports only totals).
        """
        per_send = int(round(app.bytes_per_send))
        if app.name == "Navier-Stokes":
            phases = (
                StepPhase(
                    0.20,
                    (Message("L", per_send, "uvT"), Message("R", per_send, "uvT")),
                ),
                StepPhase(0.20, (Message("L", per_send, "flux"),)),
                StepPhase(
                    0.20,
                    (Message("L", per_send, "uvT"), Message("R", per_send, "uvT")),
                ),
                StepPhase(0.20, (Message("R", per_send, "flux"),)),
                StepPhase(
                    0.20,
                    (
                        Message("L", per_send, "state"),
                        Message("R", per_send, "state"),
                    ),
                ),
            )
        else:
            phases = (
                StepPhase(
                    0.25,
                    (Message("L", per_send, "q"), Message("R", per_send, "q")),
                ),
                StepPhase(0.25, (Message("L", per_send, "flux"),)),
                StepPhase(0.25, (Message("R", per_send, "flux"),)),
                StepPhase(
                    0.25,
                    (
                        Message("L", per_send, "state"),
                        Message("R", per_send, "state"),
                    ),
                ),
            )
        return cls(app=app, phases=phases, source="paper")

    def with_volume_scale(self, scale: float, label: str = "") -> "Workload":
        """A copy with every message's size multiplied by ``scale``.

        Used to predict the paper's Section-8 radial-blocking variant on
        the 1995 platforms: with radial blocks the halo lines are nx-long
        rows instead of nr-long columns (x2.5 on the 250x100 grid), with
        the same message count and step structure.
        """
        phases = tuple(
            StepPhase(
                ph.compute_fraction,
                tuple(
                    Message(m.direction, int(round(m.nbytes * scale)), m.kind)
                    for m in ph.messages
                ),
            )
            for ph in self.phases
        )
        return Workload(
            app=self.app,
            phases=phases,
            source=label or f"{self.source}*vol{scale:g}",
        )

    @classmethod
    def measured(
        cls,
        app: Application,
        sends_per_step: float,
        bytes_per_step: float,
    ) -> "Workload":
        """Workload with this package's measured communication intensity.

        Keeps the paper's phase structure but rescales message count and
        size to what the instrumented distributed solver actually sends
        (see ``repro.experiments.characterize``).
        """
        base = cls.paper(app)
        scale_n = sends_per_step / base.sends_per_step()
        per_send = bytes_per_step / sends_per_step
        phases = []
        for ph in base.phases:
            msgs = []
            for m in ph.messages:
                n = max(1, round(scale_n))
                for _ in range(n):
                    msgs.append(Message(m.direction, int(per_send), m.kind))
            phases.append(StepPhase(ph.compute_fraction, tuple(msgs)))
        return cls(app=app, phases=tuple(phases), source="measured")


def workload_for(app: Application, source: str = "paper", **kwargs) -> Workload:
    """Convenience dispatcher."""
    if source == "paper":
        return Workload.paper(app)
    if source == "measured":
        return Workload.measured(app, **kwargs)
    raise ValueError(f"unknown workload source {source!r}")
