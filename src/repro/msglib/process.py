"""The process cluster: real multi-core SPMD execution, one OS process per rank.

The virtual cluster (:mod:`repro.msglib.virtual`) runs every rank on a
daemon *thread* — real message passing, but serialized by the GIL, so
``nprocs=8`` is slower than serial.  This module is the third execution
substrate: :class:`ProcessCluster` forks one worker process per rank and
:class:`ProcessCommunicator` implements the same :class:`Communicator`
contract over

* a **shared-memory data plane** — one POSIX shared-memory segment
  (:class:`multiprocessing.shared_memory.SharedMemory`) carved into a
  fixed ring of slots per directed ``src -> dst`` channel.  A send packs
  the payload straight into its channel's next slot with one vectorized
  ``np.copyto`` (no pickling on the hot halo path); the receiver either
  copies out of the slot and releases it (``recv``) or *borrows* the slot
  zero-copy until an explicit release (``recv_view`` ->
  :class:`SlotView`).  Each slot has its own free/occupied semaphore, so
  senders keep PVM's buffered deposit-and-return semantics up to the ring
  depth and block on exactly the slot they would overwrite beyond it —
  a borrowed slot is therefore never overwritten before release;
* a **queue control plane** — one :class:`multiprocessing.Queue` per rank
  carrying small ``(kind, source, tag, ...)`` records: shared-memory slot
  descriptors, oversized payloads inline (state gathers, checkpoints),
  and abort notices.  Tag matching, ``(source, tag)`` selectivity with a
  stash, per-call ``recv(timeout=)`` and the mailbox failure contract
  (:class:`~repro.msglib.vchannel.DeadlockError`,
  :class:`~repro.msglib.vchannel.ClusterAborted`) mirror
  :class:`~repro.msglib.vchannel.Mailbox` exactly.

Failure semantics match the virtual cluster: any worker exception is
shipped back structured, the parent broadcasts an abort to every rank
(blocked receives fail promptly), and the caller gets one
:class:`~repro.msglib.virtual.RankFailure`.  A worker that dies without
reporting (killed, segfault) is detected by liveness polling and treated
the same way, so the cluster never hangs on a silent death.

Observability composes by *local record, exact merge*: each worker
installs a fresh tracer/metrics registry mirroring the parent's enabled
state, records rank-locally, and ships the results back with its return
value; the parent folds them in with the order-independent exact merge
(:meth:`repro.obs.metrics.MetricsRegistry.ingest`), so a process run's
metrics are bitwise-independent of rank completion order.

Requires the ``fork`` start method (rank programs are closures; POSIX
only) — :class:`ProcessCluster` raises a clear error where unavailable.
"""

from __future__ import annotations

import multiprocessing as _mp
import os
import pickle
import queue as _queue
import tempfile
import time as _time
from collections import defaultdict, deque
from multiprocessing import shared_memory as _shm
from typing import Any, Callable, Sequence

import numpy as np

from ..obs import (
    FlightRing,
    MetricsRegistry,
    Tracer,
    get_flight,
    get_metrics,
    get_tracer,
    set_flight,
    set_metrics,
    set_tracer,
)
from ..obs.flight import DEFAULT_CAPACITY as _FLIGHT_CAPACITY
from .api import Communicator, CommStats, Request
from .vchannel import ClusterAborted, DeadlockError
from .virtual import RankFailure, VirtualCluster

__all__ = [
    "ProcessCluster",
    "ProcessCommunicator",
    "ProcessComm",
    "RemoteRankError",
    "SlotView",
]

#: Bytes per shared-memory slot.  Sized for halo traffic (a V7 flux pair
#: at nr=1000 is 64 KB); anything larger rides the control queue inline.
DEFAULT_SLOT_BYTES = 1 << 16

#: Slots per directed channel — the buffered-send ring depth.
DEFAULT_SLOTS_PER_CHANNEL = 8

#: Poll interval for abort-aware blocking waits (seconds).
_POLL = 0.05

#: How long a receive may observe "ring head borrowed by us + nothing
#: arriving" before it is declared a borrow deadlock.  Long enough for a
#: genuinely in-flight control record (oversized inline payloads pickle
#: through the queue feeder) to land, short enough that the failure is
#: prompt next to the cluster-level timeout.
_BORROW_GRACE = 1.0


class RemoteRankError(RuntimeError):
    """A worker failure whose original exception could not cross the
    process boundary intact (unpicklable, or the worker died without
    reporting).  Carries the original type name and, when known, the
    solver step (``.step``) so restart bookkeeping still works."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.original_type: str | None = None
        self.step: int | None = None


def _portable_exception(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a structured
    :class:`RemoteRankError` preserving type name, message and step."""
    try:
        clone = pickle.loads(pickle.dumps(exc))
        if type(clone) is type(exc):
            return exc
    except Exception:  # noqa: BLE001 - any pickling failure takes the fallback
        pass
    wrapped = RemoteRankError(f"{type(exc).__name__}: {exc}")
    wrapped.original_type = type(exc).__name__
    wrapped.step = getattr(exc, "step", None)
    return wrapped


class SlotView:
    """A received payload borrowed in place — zero-copy when it lives in
    a shared-memory ring slot.

    Returned by :meth:`ProcessCommunicator.recv_view`.  ``array`` is
    read-only; for slot-backed views it aliases the sender's ring slot,
    which stays **borrowed** (the sender blocks rather than overwrite it)
    until :meth:`release` runs.  Use as a context manager to scope the
    borrow.  ``release`` is mandatory exactly once: a second call raises
    ``RuntimeError``, and releasing after the cluster aborted raises a
    structured :class:`~repro.msglib.vchannel.ClusterAborted` (the slot
    ring is gone; the data must be treated as lost).
    """

    __slots__ = ("_array", "_release_cb", "_released")

    def __init__(self, array: np.ndarray, release_cb=None) -> None:
        self._array = array
        self._release_cb = release_cb
        self._released = False

    @property
    def array(self) -> np.ndarray:
        if self._released:
            raise RuntimeError("SlotView.array accessed after release()")
        return self._array

    @property
    def released(self) -> bool:
        return self._released

    @property
    def zero_copy(self) -> bool:
        """True when ``array`` aliases a shared-memory ring slot."""
        return self._release_cb is not None

    def release(self) -> None:
        """Return the borrowed slot to the sender's ring."""
        if self._released:
            raise RuntimeError(
                "SlotView.release() called twice (slot already returned)"
            )
        self._released = True
        cb, self._release_cb = self._release_cb, None
        self._array = None
        if cb is not None:
            cb()

    def __enter__(self) -> "SlotView":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self._released:
            self.release()


class _SlotRef:
    """A stashed-but-unconsumed shared-memory envelope.

    The payload stays in the sender's ring slot until someone asks for
    it: ``materialize`` copies it out and frees the slot (the eager
    ``recv`` path), while ``recv_view`` borrows the slot in place.
    ``claimed`` marks refs popped from the stash so the ingest-side
    pressure relief never frees a slot that a live ``SlotView`` borrows.
    """

    __slots__ = ("comm", "src", "slot", "shape", "dtype", "nbytes",
                 "array", "claimed")

    def __init__(self, comm, src, slot, shape, dtype, nbytes) -> None:
        self.comm = comm
        self.src = src
        self.slot = slot
        self.shape = shape
        self.dtype = dtype
        self.nbytes = nbytes
        self.array: np.ndarray | None = None
        self.claimed = False

    @property
    def lazy(self) -> bool:
        return self.array is None

    def materialize(self) -> np.ndarray:
        """Copy the payload out of the ring slot and free the slot."""
        if self.array is None:
            self.array = self.comm._unpack(
                self.src, self.slot, self.shape, self.dtype
            )
        return self.array


class ProcessCommunicator(Communicator):
    """Communicator endpoint for one rank of a :class:`ProcessCluster`.

    Constructed inside the worker process (the cluster object arrives by
    fork inheritance, never pickled).  Point-to-point traffic small
    enough for a slot crosses through shared memory; larger payloads and
    all control records cross the rank's queue.
    """

    def __init__(self, cluster: "ProcessCluster", rank: int) -> None:
        self.cluster = cluster
        self.rank = rank
        self.size = cluster.size
        self.stats = CommStats()
        self._q = cluster._queues[rank]
        self._stash: dict[tuple[int, str], deque] = defaultdict(deque)
        self._lazy: dict[int, deque] = defaultdict(deque)
        self._tx_seq = [0] * cluster.size
        # Borrow-deadlock bookkeeping: per-source count of shared-memory
        # envelopes ingested (mirrors the sender's _tx_seq once the queue
        # drains) and the set of ring slots currently borrowed out via
        # recv_view.  Together they tell a blocked receive whether the
        # sender's *next* slot is one we ourselves are holding.
        self._rx_ingested: dict[int, int] = defaultdict(int)
        self._borrowed: dict[int, set] = defaultdict(set)
        self._aborted: str | None = None

    # -- shared-memory ring helpers --------------------------------------------
    def _slot_offset(self, src: int, dst: int, slot: int) -> int:
        channel = src * self.size + dst
        return (
            channel * self.cluster.slots_per_channel + slot
        ) * self.cluster.slot_bytes

    def _slot_sem(self, src: int, dst: int, slot: int):
        """The per-slot free/occupied semaphore (1 = free)."""
        channel = src * self.size + dst
        return self.cluster._slot_sems[
            channel * self.cluster.slots_per_channel + slot
        ]

    def _pack(self, dest: int, payload: np.ndarray) -> int:
        """Copy ``payload`` into the next ring slot of ``self -> dest``;
        returns the slot index.  Slots are written in strict sequence and
        each has its own semaphore, so the send blocks (abort-aware) on
        exactly the slot it is about to overwrite — whether the receiver
        is merely behind or is holding that slot borrowed via
        :meth:`recv_view` — the bounded counterpart of PVM's buffered
        deposit."""
        slot = self._tx_seq[dest] % self.cluster.slots_per_channel
        sem = self._slot_sem(self.rank, dest, slot)
        deadline = _time.monotonic() + self.cluster.timeout
        waited = False
        while not sem.acquire(timeout=_POLL):
            if not waited:
                waited = True
                fl = get_flight()
                if fl.enabled:
                    fl.record(
                        "slot_wait", rank=self.rank, peer=dest, slot=slot
                    )
            if self.cluster._abort.is_set():
                raise ClusterAborted(
                    f"rank {self.rank}: cluster aborted while sending to "
                    f"{dest}"
                )
            if _time.monotonic() > deadline:
                raise DeadlockError(
                    f"rank {self.rank}: slot {slot} to {dest} stayed "
                    f"occupied for {self.cluster.timeout}s "
                    f"({self.cluster.slots_per_channel}-slot ring; receiver "
                    "stuck, dead, or holding an unreleased recv_view)"
                )
        self._tx_seq[dest] += 1
        off = self._slot_offset(self.rank, dest, slot)
        view = np.frombuffer(
            self.cluster._shm.buf, dtype=payload.dtype,
            count=payload.size, offset=off,
        ).reshape(payload.shape)
        np.copyto(view, payload)
        return slot

    def _unpack(self, src: int, slot: int, shape, dtype: str) -> np.ndarray:
        """Copy a payload out of ``src``'s slot and free it."""
        off = self._slot_offset(src, self.rank, slot)
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        arr = np.frombuffer(
            self.cluster._shm.buf, dtype=np.dtype(dtype),
            count=count, offset=off,
        ).reshape(shape).copy()
        self._slot_sem(src, self.rank, slot).release()
        return arr

    def _slot_array(self, ref: "_SlotRef") -> np.ndarray:
        """A read-only array aliasing ``ref``'s ring slot (no copy)."""
        off = self._slot_offset(ref.src, self.rank, ref.slot)
        count = int(np.prod(ref.shape, dtype=np.int64)) if ref.shape else 1
        arr = np.frombuffer(
            self.cluster._shm.buf, dtype=np.dtype(ref.dtype),
            count=count, offset=off,
        ).reshape(ref.shape)
        arr.setflags(write=False)
        return arr

    # -- point to point --------------------------------------------------------
    def send(self, dest: int, tag: str, array: np.ndarray) -> None:
        if not (0 <= dest < self.size) or dest == self.rank:
            raise ValueError(f"invalid destination {dest} from rank {self.rank}")
        tr = get_tracer()
        with tr.span("comm.send", cat="comm", rank=self.rank, peer=dest, tag=tag):
            t0 = _time.perf_counter()
            payload = np.ascontiguousarray(array)
            nbytes = payload.nbytes
            if nbytes <= self.cluster.slot_bytes:
                slot = self._pack(dest, payload)
                self.cluster._queues[dest].put(
                    ("shm", self.rank, tag, slot, payload.shape,
                     payload.dtype.str, nbytes)
                )
            else:
                # Copy before queueing: the queue's feeder thread pickles
                # asynchronously and the caller may reuse its buffer.
                if payload is array or payload.base is not None:
                    payload = payload.copy()
                self.cluster._queues[dest].put(
                    ("inline", self.rank, tag, payload)
                )
            seconds = _time.perf_counter() - t0
        self.stats.record_send(dest, tag, nbytes, seconds)
        fl = get_flight()
        if fl.enabled:
            fl.record("send", rank=self.rank, peer=dest, tag=tag, nbytes=nbytes)
        if tr.enabled:
            tr.count("messages", 1, rank=self.rank)
            tr.count("bytes_sent", nbytes, rank=self.rank)
        mx = get_metrics()
        if mx.enabled:
            mx.observe("comm.send_call_seconds", seconds, rank=self.rank)

    def _raise_aborted(self, source: int, tag: str) -> None:
        raise ClusterAborted(
            f"rank {self.rank}: cluster aborted while waiting for message "
            f"from {source} tag {tag!r}: {self._aborted}"
        )

    def _ingest(self, record: tuple) -> None:
        """Stash one control record's payload under its (source, tag).

        Shared-memory envelopes are stashed *lazily* — the payload stays
        in the ring slot so a later :meth:`recv_view` can borrow it
        without a copy.  To keep the old liveness (a sender never blocks
        just because the receiver is waiting on a different tag), refs
        that pile up unconsumed beyond half the ring depth are copied out
        oldest-first, freeing their slots.  Refs already claimed by
        ``recv``/``recv_view`` are never touched here."""
        kind = record[0]
        if kind == "shm":
            _, src, tag, slot, shape, dtype, nbytes = record
            self._rx_ingested[src] += 1
            ref = _SlotRef(self, src, slot, shape, dtype, nbytes)
            self._stash[(src, tag)].append(ref)
            lz = self._lazy[src]
            lz.append(ref)
            while lz and (lz[0].claimed or not lz[0].lazy):
                lz.popleft()
            relief = max(1, self.cluster.slots_per_channel // 2)
            while len(lz) > relief:
                old = lz.popleft()
                if not old.claimed and old.lazy:
                    old.materialize()
        elif kind == "inline":
            _, src, tag, payload = record
            self._stash[(src, tag)].append(payload)
        elif kind == "abort":
            self._aborted = record[1]

    def _drain_nowait(self) -> None:
        while True:
            try:
                self._ingest(self._q.get_nowait())
            except _queue.Empty:
                return

    def _mailbox_get(
        self, source: int, tag: str, timeout: float | None
    ) -> np.ndarray:
        """Blocking tag-matched fetch with Mailbox-identical semantics."""
        limit = self.cluster.timeout if timeout is None else timeout
        key = (source, tag)
        deadline = _time.monotonic() + limit
        borrow_deadline: float | None = None
        while True:
            if self._stash[key]:
                return self._stash[key].popleft()
            if self._aborted is not None or self.cluster._abort.is_set():
                if self._aborted is None:
                    self._aborted = "cluster abort flagged"
                self._raise_aborted(source, tag)
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"rank {self.rank}: no message from {source} tag {tag!r} "
                    f"within {limit}s (likely deadlock, tag mismatch, or a "
                    "lost message)"
                )
            try:
                record = self._q.get(timeout=min(remaining, _POLL))
            except _queue.Empty:
                borrow_deadline = self._borrow_deadlock_check(
                    source, tag, borrow_deadline
                )
                continue
            self._ingest(record)
            borrow_deadline = None  # progress from this drain re-arms

    def _borrow_deadlock_check(
        self, source: int, tag: str, armed: float | None
    ) -> float | None:
        """Detect a receive wedged behind our own ``recv_view`` borrow.

        Senders write ring slots in strict sequence, so if the *next* slot
        ``source`` will write is one this rank currently holds borrowed,
        the sender's next shared-memory send blocks on our own semaphore
        and the message this receive waits for can never arrive: a true
        deadlock, not a slow peer.  The condition must persist for
        :data:`_BORROW_GRACE` (envelopes already sent but still pickling
        through the queue feeder, and oversized payloads that bypass the
        ring entirely, both land within it) before the structured
        :class:`DeadlockError` — carrying ``rank`` / ``source`` / ``slot``
        attributes — replaces what would otherwise be a full cluster-
        timeout hang.
        """
        held = self._borrowed.get(source)
        if not held:
            return None
        nxt = self._rx_ingested[source] % self.cluster.slots_per_channel
        if nxt not in held:
            return None
        now = _time.monotonic()
        if armed is None:
            return now + _BORROW_GRACE
        if now < armed:
            return armed
        exc = DeadlockError(
            f"rank {self.rank}: waiting for a message from {source} tag "
            f"{tag!r} while holding slot {nxt} of the "
            f"{self.cluster.slots_per_channel}-slot ring borrowed via "
            "recv_view — the sender blocks on exactly that slot, so this "
            "receive can never complete; release the view (or deepen the "
            "ring) before receiving more"
        )
        exc.rank = self.rank
        exc.source = source
        exc.slot = nxt
        raise exc

    def recv(
        self, source: int, tag: str, timeout: float | None = None
    ) -> np.ndarray:
        tr = get_tracer()
        with tr.span("comm.recv", cat="comm", rank=self.rank, peer=source, tag=tag):
            t0 = _time.perf_counter()
            payload = self._mailbox_get(source, tag, timeout)
            if isinstance(payload, _SlotRef):
                payload.claimed = True
                payload = payload.materialize()
            seconds = _time.perf_counter() - t0
        self.stats.record_recv(source, tag, payload.nbytes, seconds)
        fl = get_flight()
        if fl.enabled:
            fl.record(
                "recv", rank=self.rank, peer=source, tag=tag,
                nbytes=payload.nbytes,
            )
        if tr.enabled:
            tr.count("messages", 1, rank=self.rank)
            tr.count("bytes_received", payload.nbytes, rank=self.rank)
        mx = get_metrics()
        if mx.enabled:
            mx.observe("comm.recv_call_seconds", seconds, rank=self.rank)
        return payload

    def irecv(
        self, source: int, tag: str, timeout: float | None = None
    ) -> Request:
        """True non-blocking receive: ``test()`` probes the control queue."""
        comm = self
        key = (source, tag)

        class _ProbingRecv(Request):
            def __init__(self) -> None:
                self._value = None
                self._done = False

            def test(self) -> bool:
                if self._done:
                    return True
                comm._drain_nowait()
                if comm._stash[key]:
                    payload = comm._stash[key].popleft()
                    if isinstance(payload, _SlotRef):
                        payload.claimed = True
                        payload = payload.materialize()
                    comm.stats.record_recv(source, tag, payload.nbytes)
                    self._value = payload
                    self._done = True
                return self._done

            def wait(self):
                if not self._done:
                    self._value = comm.recv(source, tag, timeout=timeout)
                    self._done = True
                return self._value

        return _ProbingRecv()

    def _make_view(self, item) -> tuple[SlotView, int]:
        """Wrap a stash item as a :class:`SlotView` (borrowing lazy slot
        refs in place); returns ``(view, nbytes)``."""
        if isinstance(item, _SlotRef):
            item.claimed = True
            nbytes = item.nbytes
            if item.lazy:
                src, slot = item.src, item.slot
                sem = self._slot_sem(src, self.rank, slot)
                self._borrowed[src].add(slot)

                def _release() -> None:
                    self._borrowed[src].discard(slot)
                    if (
                        self._aborted is not None
                        or self.cluster._abort.is_set()
                    ):
                        raise ClusterAborted(
                            f"rank {self.rank}: released a borrowed "
                            f"slot from {src} after cluster abort — "
                            "the slot ring is gone and the borrowed "
                            "data must be treated as lost"
                        )
                    sem.release()

                return SlotView(self._slot_array(item), _release), nbytes
            return SlotView(item.array), nbytes
        return SlotView(item), item.nbytes

    def recv_view(
        self, source: int, tag: str, timeout: float | None = None
    ) -> SlotView:
        """Blocking tag-matched receive that *borrows* the payload in
        place instead of copying it out.

        For payloads still sitting in their shared-memory ring slot the
        returned :class:`SlotView` aliases the slot directly (zero-copy);
        the sender cannot overwrite that slot until :meth:`SlotView.release`
        runs — it blocks on the slot's semaphore, and times out into a
        ``DeadlockError`` if the borrow is held too long.  Payloads that
        arrived inline (oversized) or were already copied out under ring
        pressure come back as owned views (``zero_copy`` is False);
        release is still required, keeping the calling discipline
        uniform.  Semantics otherwise match :meth:`recv` (same tag
        matching, timeouts, abort behaviour, stats accounting).
        """
        tr = get_tracer()
        with tr.span(
            "comm.recv_view", cat="comm", rank=self.rank, peer=source, tag=tag
        ):
            t0 = _time.perf_counter()
            item = self._mailbox_get(source, tag, timeout)
            view, nbytes = self._make_view(item)
            seconds = _time.perf_counter() - t0
        self.stats.record_recv(source, tag, nbytes, seconds)
        fl = get_flight()
        if fl.enabled:
            fl.record(
                "recv_view", rank=self.rank, peer=source, tag=tag,
                nbytes=nbytes,
            )
        if tr.enabled:
            tr.count("messages", 1, rank=self.rank)
            tr.count("bytes_received", nbytes, rank=self.rank)
        return view

    def irecv_view(
        self, source: int, tag: str, timeout: float | None = None
    ) -> Request:
        """Non-blocking :meth:`recv_view`: ``test()`` probes the control
        queue and borrows the slot the moment the envelope lands, so a
        split-phase exchange can post the borrow before the interior
        compute and alias the slot zero-copy at ``wait()``."""
        comm = self
        key = (source, tag)

        class _ProbingRecvView(Request):
            def __init__(self) -> None:
                self._view: SlotView | None = None

            def test(self) -> bool:
                if self._view is not None:
                    return True
                comm._drain_nowait()
                if comm._stash[key]:
                    item = comm._stash[key].popleft()
                    view, nbytes = comm._make_view(item)
                    comm.stats.record_recv(source, tag, nbytes)
                    self._view = view
                return self._view is not None

            def wait(self) -> SlotView:
                if self._view is None:
                    self._view = comm.recv_view(source, tag, timeout=timeout)
                return self._view

        return _ProbingRecvView()

    def pending(self) -> int:
        """Stashed (unconsumed) envelopes — should be 0 at a clean exit."""
        return sum(len(d) for d in self._stash.values())


#: Short alias, mirroring ``VirtualComm``.
ProcessComm = ProcessCommunicator


def bind_to_parent_lifetime() -> None:
    """Ask the kernel to SIGTERM this process when its parent dies.

    A SIGKILLed cluster parent (e.g. a run-service worker) must not leave
    immortal rank orphans: an orphan's queue feeder threads block forever
    on pipes nobody reads, and the orphan holds every inherited file
    descriptor — including stdio, which hangs any pipeline reading the
    original process's output.  Linux-only (``PR_SET_PDEATHSIG``);
    elsewhere this is a silent no-op and orphans fall back to
    communication timeouts.
    """
    try:
        import ctypes
        import signal as _signal

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, _signal.SIGTERM, 0, 0, 0)  # 1 = PR_SET_PDEATHSIG
    except (OSError, AttributeError, TypeError):  # pragma: no cover
        pass


def _worker_main(
    cluster: "ProcessCluster",
    rank: int,
    fn: Callable[..., Any],
    args: tuple,
    extra: tuple,
) -> None:
    """Worker-process entry: run the rank program, ship the outcome.

    Inherits the parent's enabled/disabled observability state through
    fork, but records into *fresh* per-process instances (the parent's
    tracer and registry hold thread locks the child must not share) and
    ships the recorded data back with the result for an exact merge."""
    bind_to_parent_lifetime()
    if os.getppid() != cluster._owner_pid:
        os._exit(1)  # parent died before the death signal was armed
    comm = ProcessCommunicator(cluster, rank)
    parent_tracer = get_tracer()
    tracer = None
    if parent_tracer.enabled:
        # The distributed trace context (if any) crosses the fork so the
        # rank's spans share the submit-time trace id.
        tracer = Tracer(context=parent_tracer.context)
        set_tracer(tracer)
        tracer.bind_rank(rank)
    reg = None
    if get_metrics().enabled:
        reg = MetricsRegistry()
        set_metrics(reg)
        reg.bind_rank(rank)
    if cluster._flight_ring is not None:
        # Record straight into the crash-survivable shared file: the
        # parent (or the service, after a SIGKILL) reads it back by path.
        set_flight(cluster._flight_ring.writer(rank))
    try:
        value = fn(comm, *args, *extra)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        cluster._to_parent.put(
            ("error", rank, _portable_exception(exc), comm.stats, reg,
             tracer.trace if tracer is not None else None)
        )
    else:
        cluster._to_parent.put(
            ("result", rank, value, comm.stats, reg,
             tracer.trace if tracer is not None else None)
        )


class ProcessCluster:
    """A fixed-size set of ranks, one OS process each, with all-to-all
    shared-memory connectivity.  API mirrors :class:`VirtualCluster`."""

    def __init__(
        self,
        size: int,
        timeout: float = 120.0,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        slots_per_channel: int = DEFAULT_SLOTS_PER_CHANNEL,
    ) -> None:
        if size < 1:
            raise ValueError("cluster size must be >= 1")
        try:
            self._ctx = _mp.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError(
                "substrate='process' needs the 'fork' start method (rank "
                "programs are closures); unavailable on this platform — "
                "use the default substrate='virtual' instead"
            ) from exc
        self.size = size
        self.timeout = timeout
        self.slot_bytes = int(slot_bytes)
        self.slots_per_channel = int(slots_per_channel)
        nbytes = size * size * self.slots_per_channel * self.slot_bytes
        self._shm = _shm.SharedMemory(create=True, size=max(nbytes, 1))
        self._queues = [self._ctx.Queue() for _ in range(size)]
        self._to_parent = self._ctx.Queue()
        self._abort = self._ctx.Event()
        # One binary semaphore per ring slot (1 = free).  Per-slot rather
        # than per-channel counting so receives may release out of order
        # (recv_view borrows) while the sender still blocks on exactly
        # the sequential slot it is about to overwrite.
        self._slot_sems = [
            self._ctx.Semaphore(1)
            for _ in range(size * size * self.slots_per_channel)
        ]
        self._procs: list = []
        self._closed = False
        self._owner_pid = os.getpid()
        # Flight recorder backing file: created while a recorder is
        # installed, so rank events survive even a SIGKILLed worker.  An
        # explicit recorder ``ring_path`` (the service points it into the
        # result store) is reused; otherwise a throwaway temp file.
        self._flight_ring: FlightRing | None = None
        self._flight_ring_owned = False
        recorder = get_flight()
        if recorder.enabled:
            path = getattr(recorder, "ring_path", None)
            if path is None:
                fd, path = tempfile.mkstemp(
                    prefix="repro-flight-", suffix=".ring"
                )
                os.close(fd)
                self._flight_ring_owned = True
            self._flight_ring = FlightRing.create(
                str(path), size,
                capacity=getattr(recorder, "capacity", _FLIGHT_CAPACITY),
            )
        self.last_stats: list[CommStats] = [CommStats() for _ in range(size)]
        #: Parent-side checkpoint hook: ``snapshot_sink(step, t, q)`` is
        #: called for every snapshot a worker submits (see
        #: :meth:`submit_snapshot`); the runner points it at its
        #: :class:`~repro.parallel.checkpoint.CheckpointStore`.
        self.snapshot_sink: Callable[[int, float, np.ndarray], Any] | None = None

    # -- worker-side checkpoint proxy ------------------------------------------
    def submit_snapshot(self, step: int, t: float, q: np.ndarray) -> None:
        """Ship a checkpoint snapshot to the parent (worker-side call).

        The checkpoint store lives in the parent so snapshots survive the
        crash of any worker — including the rank that gathered them."""
        self._to_parent.put(("snapshot", int(step), float(t), np.array(q, copy=True)))

    # -- parent-side control ---------------------------------------------------
    def abort(self, reason: str) -> None:
        """Poison every rank: blocked operations raise ``ClusterAborted``."""
        self._abort.set()
        for q in self._queues:
            q.put(("abort", reason))

    def _handle_silent_deaths(self, pending, errors) -> None:
        for rank in sorted(pending):
            p = self._procs[rank]
            if not p.is_alive():
                exc = RemoteRankError(
                    f"rank {rank} worker exited (code {p.exitcode}) without "
                    "reporting a result"
                )
                errors.append((rank, exc))
                pending.discard(rank)
                self.abort(f"rank {rank} died silently (exit {p.exitcode})")

    def run(
        self,
        fn: Callable[..., Any],
        *args: Any,
        per_rank_args: Sequence[tuple] | None = None,
    ) -> list[Any]:
        """Run ``fn(comm, *args)`` on every rank; returns per-rank results.

        Mirrors :meth:`VirtualCluster.run`: any rank failure aborts the
        others and raises one structured
        :class:`~repro.msglib.virtual.RankFailure`.  Each worker's
        locally-recorded metrics and trace are folded into the parent's
        active registry/tracer (exact, order-independent merge) before
        this returns or raises."""
        if self._closed:
            raise RuntimeError("ProcessCluster is closed")
        if self._procs:
            raise RuntimeError("ProcessCluster.run is single-shot; build a "
                               "fresh cluster per attempt")
        results: list[Any] = [None] * self.size
        errors: list[tuple[int, BaseException]] = []
        shipped_obs: list[tuple] = []
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    self, r, fn, args,
                    per_rank_args[r] if per_rank_args is not None else (),
                ),
                daemon=True,
            )
            for r in range(self.size)
        ]
        for p in self._procs:
            p.start()
        pending = set(range(self.size))
        while pending:
            try:
                msg = self._to_parent.get(timeout=0.2)
            except _queue.Empty:
                self._handle_silent_deaths(pending, errors)
                continue
            kind = msg[0]
            if kind == "snapshot":
                _, step, t, q = msg
                if self.snapshot_sink is not None:
                    self.snapshot_sink(step, t, q)
            elif kind == "result":
                _, rank, value, stats, reg, trace = msg
                results[rank] = value
                self.last_stats[rank] = stats
                shipped_obs.append((reg, trace))
                pending.discard(rank)
            elif kind == "error":
                _, rank, exc, stats, reg, trace = msg
                errors.append((rank, exc))
                self.last_stats[rank] = stats
                shipped_obs.append((reg, trace))
                pending.discard(rank)
                self.abort(f"rank {rank} died with {exc!r}")
        for p in self._procs:
            p.join(timeout=10.0)
            if p.is_alive():  # pragma: no cover - stuck worker backstop
                p.terminate()
                p.join(timeout=5.0)
        self._absorb_observability(shipped_obs)
        flight_events = self._collect_flight()
        if errors:
            failure = VirtualCluster._failure(errors)
            if flight_events is not None:
                failure.flight = flight_events
            raise failure
        return results

    def _collect_flight(self) -> dict[int, list] | None:
        """Read every rank's surviving ring events back into the parent's
        recorder; returns them (also attached to any RankFailure)."""
        if self._flight_ring is None:
            return None
        events = self._flight_ring.read_all()
        recorder = get_flight()
        if recorder.enabled and hasattr(recorder, "ingest"):
            for rank, evs in events.items():
                if evs:
                    recorder.ingest(rank, evs)
        return events

    @staticmethod
    def _absorb_observability(shipped: list[tuple]) -> None:
        """Fold worker registries/traces into the parent's active ones."""
        reg_parent = get_metrics()
        tr_parent = get_tracer()
        for reg, trace in shipped:
            if reg is not None and reg_parent.enabled:
                reg_parent.ingest(reg)
            if trace is not None and tr_parent.enabled:
                dst = tr_parent.trace
                dst.spans.extend(trace.spans)
                dst.events.extend(trace.events)
                for key, v in trace.counters.items():
                    dst.counters[key] = dst.counters.get(key, 0.0) + v

    def total_stats(self) -> CommStats:
        """Aggregate statistics over all ranks (last completed run)."""
        agg = CommStats()
        for st in self.last_stats:
            agg = agg.merged_with(st)
        return agg

    def close(self) -> None:
        """Release processes, queues and the shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        for p in self._procs:
            if p.is_alive():  # pragma: no cover - only after a failed run
                p.terminate()
                p.join(timeout=5.0)
        for q in [*self._queues, self._to_parent]:
            q.close()
            q.cancel_join_thread()
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        if self._flight_ring is not None:
            self._flight_ring.close()
            if self._flight_ring_owned:
                self._flight_ring.unlink()
            self._flight_ring = None

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            if not self._closed and os.getpid() == getattr(
                self, "_owner_pid", os.getpid()
            ):
                self.close()
        except Exception:  # noqa: BLE001 - interpreter shutdown
            pass
