"""Reproduction benchmark: Figure 5: Components of execution time (Navier-Stokes; LACE)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig05(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig05"),
        "Figure 5: Components of execution time (Navier-Stokes; LACE)",
    )
