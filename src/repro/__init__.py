"""repro — reproduction of Jayasimha, Hayder & Pillay (SC'95).

*Parallelizing Navier-Stokes Computations on a Variety of Architectural
Platforms.*

The package has three layers:

1. **The application** (``repro.physics``, ``repro.numerics``): a
   time-accurate compressible Navier-Stokes/Euler solver for an excited
   supersonic axisymmetric jet, discretized with the fourth-order
   Gottlieb-Turkel (2-4) MacCormack scheme.
2. **The parallelization** (``repro.parallel``, ``repro.msglib``): axial
   block domain decomposition with grouped halo messages (the paper's
   Version 5) plus the overlapped (V6) and de-burstified (V7) variants,
   executed for real over an in-process message-passing cluster.
3. **The architectural platforms** (``repro.machines``, ``repro.simulate``):
   parametric CPU/cache/memory/network models of the paper's 1995 platforms
   (LACE cluster under five interconnects, Cray Y-MP, IBM SP, Cray T3D) and
   a discrete-event simulator that reproduces every table and figure of the
   paper's evaluation (``repro.analysis``, ``repro.experiments``).

Every substrate is reached through one facade (``repro.api``; see also
``repro.obs`` for tracing)::

    from repro import run
    res = run("jet", steps=100, nx=64, nr=32)          # serial
    res = run("jet", steps=50, nprocs=4, trace=True)   # distributed + trace
    res = run("jet", platform="Cray T3D", nprocs=16)   # simulated platform
    print(res.summary())
"""

from .api import RunResult, RunTimings, run, run_request
from .faults import FaultPlan
from .request import (
    ExecutionConfig,
    ObservabilityConfig,
    ResilienceConfig,
    RunRequest,
)
from .grid import Grid, paper_grid
from .physics.state import FlowState
from .physics.jet import JetProfile, InflowExcitation
from .numerics.solver import (
    EulerSolver,
    NavierStokesSolver,
    SolverConfig,
)
from .scenarios import (
    SCENARIOS,
    Scenario,
    acoustic_pulse_scenario,
    jet_initial_state,
    jet_scenario,
    periodic_advection_scenario,
    scenario_by_name,
    shock_tube_scenario,
)

__version__ = "1.1.0"

__all__ = [
    "run",
    "run_request",
    "RunRequest",
    "ExecutionConfig",
    "ResilienceConfig",
    "ObservabilityConfig",
    "RunResult",
    "RunTimings",
    "FaultPlan",
    "Grid",
    "paper_grid",
    "FlowState",
    "JetProfile",
    "InflowExcitation",
    "NavierStokesSolver",
    "EulerSolver",
    "SolverConfig",
    "Scenario",
    "SCENARIOS",
    "scenario_by_name",
    "jet_scenario",
    "jet_initial_state",
    "periodic_advection_scenario",
    "acoustic_pulse_scenario",
    "shock_tube_scenario",
    "__version__",
]
