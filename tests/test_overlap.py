"""Overlapped (split-phase) halo exchange: the bitwise wall + protocol units.

The tentpole invariant: a distributed run with ``overlap=True`` is
**bitwise-identical** to the blocking exchange — across scenarios
(Euler / Navier-Stokes), decompositions (axial / radial / 2-D),
substrates (virtual / process) and kernel backends (fused / compiled).
The wall compares every overlapped run against the serial reference *of
the same backend*; the existing differential suites pin blocking
distributed == serial, so equality here pins overlap == blocking too.

The protocol units cover the split-phase machinery directly: the
provisional-pass edge recompute (``rate_edges``), the
:class:`~repro.parallel.halo.PendingGhosts` lifetime rules, the
:class:`~repro.msglib.api.OwnedView` copy-semantics default of the
``Communicator`` ABC, and the fingerprint normalization (overlapped and
blocking requests share one cache identity).

The chaos half lives at the bottom: the self-healing transport and
checkpoint/restart must compose with in-flight posted receives.
"""

from __future__ import annotations

import dataclasses
import multiprocessing

import numpy as np
import pytest

from repro import jet_scenario
from repro.faults import FaultPlan, fault_plan_by_name
from repro.msglib import VirtualCluster
from repro.msglib.api import OwnedView
from repro.numerics.kernels.base import StepWorkspace
from repro.numerics.kernels.overlap import rate_edges
from repro.numerics.stencils import (
    backward_difference,
    extend_axis,
    forward_difference,
)
from repro.obs import Tracer
from repro.parallel.halo import PendingGhosts
from repro.parallel.runner import ParallelJetSolver, serial_reference
from repro.request import RunRequest

STEPS = 6

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _case(viscous: bool, backend: str):
    sc = jet_scenario(nx=48, nr=16, viscous=viscous)
    config = dataclasses.replace(
        sc.solver.config, dt_recompute_every=1, backend=backend
    )
    ref = serial_reference(sc.state, config, steps=STEPS)
    return sc, config, ref


@pytest.fixture(scope="module")
def cases():
    """(viscous, backend) -> (scenario, config, serial reference)."""
    built = {}

    def get(viscous: bool, backend: str):
        key = (viscous, backend)
        if key not in built:
            built[key] = _case(viscous, backend)
        return built[key]

    return get


# -- the differential wall ----------------------------------------------------


class TestOverlapBitwiseWall:
    """overlap == blocking, everywhere the blocking exchange runs."""

    @pytest.mark.parametrize("backend", ["fused", "compiled"])
    @pytest.mark.parametrize(
        "substrate",
        [
            "virtual",
            pytest.param(
                "process",
                marks=pytest.mark.skipif(not HAS_FORK, reason="needs fork"),
            ),
        ],
    )
    @pytest.mark.parametrize(
        "decomp_kw",
        [
            dict(decomposition="axial"),
            dict(decomposition="radial"),
            dict(decomposition="2d", px=2, pr=1),
        ],
        ids=["axial", "radial", "2d"],
    )
    @pytest.mark.parametrize("viscous", [False, True], ids=["euler", "ns"])
    def test_overlap_matches_serial(
        self, cases, viscous, decomp_kw, substrate, backend
    ):
        sc, config, ref = cases(viscous, backend)
        res = ParallelJetSolver(
            sc.state, config, nranks=2, timeout=60, substrate=substrate,
            overlap=True, **decomp_kw,
        ).run(STEPS)
        assert np.array_equal(res.state.q, ref.q)

    def test_overlap_actually_engages(self, cases):
        """Guard against a silent degrade: the overlapped run must emit
        split-phase halo spans (post + finish), and fewer blocking flux
        exchanges than the blocking run."""
        sc, config, _ = cases(True, "fused")
        tracer = Tracer(name="overlap")
        ParallelJetSolver(
            sc.state, config, nranks=2, timeout=60, overlap=True
        ).run(2, tracer=tracer)
        names = {s.name for s in tracer.trace.spans}
        assert "halo.post" in names
        assert "halo.finish" in names
        assert "halo.flux_high" not in names
        assert "halo.flux_low" not in names

    def test_version_6_overlaps_by_default(self, cases):
        """True V6: the version's ExchangePolicy turns the split-phase
        exchange on without an explicit ``overlap=`` request."""
        sc, config, ref = cases(True, "fused")
        tracer = Tracer(name="v6")
        res = ParallelJetSolver(
            sc.state, config, nranks=2, timeout=60, version=6
        ).run(STEPS, tracer=tracer)
        assert np.array_equal(res.state.q, ref.q)
        assert "halo.post" in {s.name for s in tracer.trace.spans}

    def test_baseline_backend_degrades_to_blocking(self, cases):
        """Without a kernel workspace there is no scratch-backed rate
        path to overlap into; the request is honoured as blocking —
        still bitwise-correct, never an error."""
        sc, _, _ = cases(True, "fused")
        config = dataclasses.replace(
            sc.solver.config, dt_recompute_every=1, backend="baseline"
        )
        ref = serial_reference(sc.state, config, steps=STEPS)
        res = ParallelJetSolver(
            sc.state, config, nranks=2, timeout=60, overlap=True
        ).run(STEPS)
        assert np.array_equal(res.state.q, ref.q)

    def test_four_ranks_interior_and_edge(self, cases):
        """Interior ranks post on both sides per step; edge ranks mix a
        posted receive with a serial boundary."""
        sc, config, ref = cases(True, "fused")
        res = ParallelJetSolver(
            sc.state, config, nranks=4, timeout=60, overlap=True
        ).run(STEPS)
        assert np.array_equal(res.state.q, ref.q)


# -- the provisional-pass edge recompute --------------------------------------


def _full_rate(flux, lo, hi, axis, h, forward, source, iw):
    """The reference rate: real ghosts through the fused ufunc chain."""
    ext = extend_axis(flux, axis, low=lo, high=hi)
    diff = forward_difference if forward else backward_difference
    d = diff(ext, axis, h)
    d = -d if source is None else source - d
    if not (isinstance(iw, float) and iw == 1.0):
        d = d * iw
    return d


class TestRateEdges:
    """rate_edges must land bit-for-bit on the full-ghost rate's edge
    columns — that equality is the whole overlap correctness argument."""

    @pytest.mark.parametrize("axis", [1, 2])
    @pytest.mark.parametrize("forward", [True, False])
    @pytest.mark.parametrize("with_source", [False, True])
    @pytest.mark.parametrize("with_iw", [False, True])
    def test_matches_full_ghost_rate(self, axis, forward, with_source, with_iw):
        rng = np.random.default_rng(42 + axis + 2 * forward)
        shape = (4, 9, 7)
        flux = rng.random(shape)
        ghost_shape = (2,) + shape[:axis] + shape[axis + 1:]
        ghosts = rng.random(ghost_shape)
        source = rng.random(shape) if with_source else None
        if with_iw:
            iw = 1.0 / np.linspace(1.0, 2.0, shape[2])
        else:
            iw = 1.0
        h = 0.013
        lo, hi = (None, ghosts) if forward else (ghosts, None)
        want = _full_rate(flux, lo, hi, axis, h, forward, source, iw)
        # Provisional pass: the in-flight side is None (cubic), then the
        # two edge columns are recomputed from the real ghosts.
        got = _full_rate(flux, None, None, axis, h, forward, source, iw)
        rate_edges(flux, ghosts, axis, h, forward, source, iw, got)
        assert np.array_equal(got, want)

    def test_only_two_edge_columns_touched(self):
        rng = np.random.default_rng(7)
        flux = rng.random((4, 9, 7))
        ghosts = rng.random((2, 7))
        provisional = _full_rate(flux, None, None, 1, 0.1, True, None, 1.0)
        out = provisional.copy()
        rate_edges(flux, ghosts, 1, 0.1, True, None, 1.0, out)
        # Forward differencing: only the two high-side columns change.
        assert np.array_equal(out[:, :-2, :], provisional[:, :-2, :])

    def test_workspace_facade_dispatch(self):
        """StepWorkspace.rate_interior/rate_edges — the named loop
        variants of the kernel-backend API — compose to the full rate."""
        rng = np.random.default_rng(3)
        shape = (4, 9, 7)
        ws = StepWorkspace(shape, viscous=False)
        sc = ws.sweep_x
        flux = rng.random(shape)
        ghosts = rng.random((2, 7))
        want = _full_rate(flux, None, ghosts, 1, 0.05, True, None, 1.0)
        got = ws.rate_interior(
            sc, flux, None, None, 1, 0.05, True, None, 1.0
        )
        ws.rate_edges(flux, ghosts, 1, 0.05, True, None, 1.0, got)
        assert np.array_equal(got, want)


# -- split-phase protocol objects ---------------------------------------------


class TestPendingGhosts:
    def test_finish_twice_raises(self):
        pending = PendingGhosts(None, "t", "high", None, False, False)
        assert not pending.in_flight
        assert pending.finish() is None
        with pytest.raises(RuntimeError, match="called twice"):
            pending.finish()


class TestOwnedView:
    """The Communicator ABC's copy-semantics recv_view default."""

    def test_protocol(self):
        view = OwnedView(np.arange(5.0))
        assert not view.zero_copy
        assert not view.array.flags.writeable
        assert np.array_equal(view.array, np.arange(5.0))
        view.release()
        assert view.released
        with pytest.raises(RuntimeError, match="after release"):
            view.array
        with pytest.raises(RuntimeError, match="called twice"):
            view.release()

    def test_context_manager(self):
        with OwnedView(np.ones(3)) as view:
            assert view.array.sum() == 3.0
        assert view.released

    def test_virtual_comm_recv_view_default(self):
        """VirtualComm has no recv_view of its own — the ABC default
        supplies owned views with the uniform release discipline, so no
        call site needs a hasattr guard."""

        def program(comm):
            if comm.rank == 0:
                comm.send(1, "v", np.arange(6.0))
                return True
            with comm.recv_view(0, "v", timeout=20) as view:
                assert not view.zero_copy
                return bool(np.array_equal(view.array, np.arange(6.0)))

        assert VirtualCluster(2, timeout=20).run(program)[1] is True

    def test_virtual_comm_irecv_view_default(self):
        def program(comm):
            if comm.rank == 0:
                comm.send(1, "v", np.full(4, 2.0))
                return True
            req = comm.irecv_view(0, "v", timeout=20)
            with req.wait() as view:
                return bool(np.array_equal(view.array, np.full(4, 2.0)))

        assert VirtualCluster(2, timeout=20).run(program)[1] is True


# -- fingerprint normalization ------------------------------------------------


class TestOverlapIdentity:
    def test_overlap_does_not_change_fingerprint(self):
        kw = dict(steps=6, nx=48, nr=24, nprocs=2)
        blocking = RunRequest.from_run_args("jet", **kw)
        overlapped = RunRequest.from_run_args("jet", overlap=True, **kw)
        assert overlapped.fingerprint() == blocking.fingerprint()

    def test_overlap_round_trips_on_the_wire(self):
        req = RunRequest.from_run_args(
            "jet", steps=6, nprocs=2, overlap=True
        )
        wire = req.to_dict()
        assert wire["execution"]["overlap"] is True
        back = RunRequest.from_dict(wire)
        assert back.execution.overlap is True
        assert back.fingerprint() == req.fingerprint()

    def test_old_wire_form_still_parses(self):
        """Requests serialized before the overlap field default to the
        blocking exchange."""
        wire = RunRequest.from_run_args("jet", steps=6, nprocs=2).to_dict()
        del wire["execution"]["overlap"]
        back = RunRequest.from_dict(wire)
        assert back.execution.overlap is False


# -- chaos over the overlapped path -------------------------------------------

#: One plan per fault mechanism (mirrors test_faults.FAULT_KINDS): each
#: recovery path must also hold while receives are posted early and slot
#: borrows span the interior compute.
OVERLAP_FAULT_KINDS = {
    "drop": dict(drop=0.15, max_transmits=4),
    "duplicate": dict(duplicate=0.25),
    "reorder": dict(reorder=0.2),
    "mixed": dict(drop=0.08, duplicate=0.08, reorder=0.08, truncate=0.05,
                  delay=0.15, max_delay=0.001, max_transmits=4),
}


class TestOverlapChaos:
    @pytest.mark.parametrize("kind", sorted(OVERLAP_FAULT_KINDS))
    def test_healing_transport_composes(self, cases, chaos_seed, kind):
        sc, config, ref = cases(True, "fused")
        plan = FaultPlan(
            seed=chaos_seed, name=f"overlap-{kind}", recv_timeout=0.3,
            recv_retries=4, **OVERLAP_FAULT_KINDS[kind],
        )
        res = ParallelJetSolver(
            sc.state, config, nranks=2, timeout=30, faults=plan,
            overlap=True,
        ).run(STEPS)
        assert np.array_equal(res.state.q, ref.q)

    def test_crash_restart_composes(self, cases, chaos_seed):
        """An injected crash leaves posted receives in flight on the
        survivors; the restart must rebuild the exchange from the
        checkpoint, bitwise-exact."""
        sc, config, ref = cases(True, "fused")
        plan = FaultPlan(seed=chaos_seed, crashes=((1, 4),),
                         recv_timeout=0.2, recv_retries=2)
        res = ParallelJetSolver(
            sc.state, config, nranks=2, timeout=30, faults=plan,
            checkpoint_every=2, overlap=True,
        ).run(STEPS)
        assert res.restarts == 1
        assert np.array_equal(res.state.q, ref.q)

    def test_lossy_crash_preset_composes(self, cases, chaos_seed):
        sc, config, ref = cases(True, "fused")
        plan = fault_plan_by_name("lossy-crash", seed=chaos_seed)
        res = ParallelJetSolver(
            sc.state, config, nranks=2, timeout=30, faults=plan,
            checkpoint_every=2, max_restarts=3, overlap=True,
        ).run(STEPS)
        assert res.restarts >= 1
        assert np.array_equal(res.state.q, ref.q)
