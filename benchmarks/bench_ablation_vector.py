"""Ablation: Y-MP vector lengths (the paper's Section-5 partitioning rule).

"[We] partitioned the domain along the orthogonal direction of the sweep to
keep the vector lengths large and to avoid non-stride access" — this bench
quantifies the rule: with orthogonal partitioning the vector length stays
at the full dimension regardless of processor count; partitioning *along*
the sweep would shrink vectors to ``n/p`` and fall down the Hockney curve.
"""

from repro.analysis.report import format_table
from repro.machines.platforms import CRAY_YMP
from repro.simulate.sharedmem import SharedMemoryMachine
from repro.simulate.workload import NAVIER_STOKES

from conftest import run_and_print


def _study() -> str:
    vcpu = CRAY_YMP.vector_cpu
    rows = []
    for p in (1, 2, 4, 8):
        # Orthogonal partitioning: vectors stay the full 100-point radius.
        good = SharedMemoryMachine(CRAY_YMP, p).run(
            NAVIER_STOKES, vector_length=100
        )
        # Anti-pattern: partitioning along the sweep shrinks vectors.
        bad = SharedMemoryMachine(CRAY_YMP, p).run(
            NAVIER_STOKES, vector_length=100 / p
        )
        rows.append(
            [
                p,
                f"{vcpu.sustained_mflops(100):.0f}",
                f"{good.execution_time:,.0f}",
                f"{vcpu.sustained_mflops(100 / p):.0f}",
                f"{bad.execution_time:,.0f}",
                f"{bad.execution_time / good.execution_time:.2f}x",
            ]
        )
    return format_table(
        [
            "p",
            "MFLOPS (vl=100)",
            "exec orthogonal (s)",
            "MFLOPS (vl=100/p)",
            "exec along-sweep (s)",
            "penalty",
        ],
        rows,
        title="Y-MP partitioning-direction ablation (Navier-Stokes):",
    )


def test_vector_ablation(benchmark):
    run_and_print(
        benchmark, _study, "Ablation: Y-MP vector length vs partitioning"
    )
