"""Cray T3D three-dimensional torus with dimension-order routing.

The paper's machine is an 8 x 4 x 2 torus (64 nodes, 16 available in
single-user mode) with 150 MB/s peak per-link transfer rate and "a
relatively small setup cost" (Sections 4.3, 7.2).  Messages hold every
directed link along their X-then-Y-then-Z route; with the solver's
nearest-neighbour ring traffic most routes are a single hop, which is why
the T3D's communication time is negligible and its speedup nearly linear
in the paper's Figures 9-10.
"""

from __future__ import annotations

from .base import Network


class Torus3DNetwork(Network):
    """Dimension-order-routed 3-D torus."""

    def __init__(
        self,
        dims: tuple[int, int, int] = (8, 4, 2),
        link_bytes_per_s: float = 150e6,
        latency: float = 10e-6,
        per_hop_latency: float = 2e-6,
    ) -> None:
        self.name = "T3D-torus"
        self.dims = dims
        self.nnodes = dims[0] * dims[1] * dims[2]
        self.link_bytes_per_s = link_bytes_per_s
        self.latency = latency
        self.per_hop_latency = per_hop_latency

    # -- coordinates ---------------------------------------------------------
    def coords(self, node: int) -> tuple[int, int, int]:
        """Linear rank -> (x, y, z), x fastest (the natural ring embedding)."""
        dx, dy, _dz = self.dims
        return node % dx, (node // dx) % dy, node // (dx * dy)

    def _hops(self, src: int, dst: int) -> list[str]:
        """Directed links of the X->Y->Z dimension-order route."""
        links: list[str] = []
        cur = list(self.coords(src))
        target = self.coords(dst)
        for axis, label in enumerate("xyz"):
            size = self.dims[axis]
            delta = (target[axis] - cur[axis]) % size
            # Shorter way around the ring.
            step = 1 if delta <= size - delta else -1
            nsteps = delta if step == 1 else size - delta
            for _ in range(nsteps):
                here = tuple(cur)
                cur[axis] = (cur[axis] + step) % size
                links.append(f"{label}{'+' if step == 1 else '-'}:{here}")
        return links

    def route_length(self, src: int, dst: int) -> int:
        """Hop count of the dimension-order route."""
        return len(self._hops(src, dst))

    def link_ids(self, src: int, dst: int) -> list[str]:
        return sorted(set(self._hops(src, dst)))

    def capacities(self) -> dict[str, int]:
        caps: dict[str, int] = {}
        for node in range(self.nnodes):
            c = self.coords(node)
            for label in "xyz":
                caps[f"{label}+:{c}"] = 1
                caps[f"{label}-:{c}"] = 1
        return caps

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.link_bytes_per_s

    def uncontended_message_time(self, nbytes: int) -> float:
        # Cut-through routing: per-hop latency, single occupancy charge.
        return self.latency + self.transfer_time(nbytes)

    def saturation_bandwidth(self) -> float:
        return self.nnodes * self.link_bytes_per_s
