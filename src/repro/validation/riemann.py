"""Exact Riemann solver for the 1-D ideal-gas Euler equations.

The standard Toro (1997) construction: Newton iteration on the star-region
pressure using two-shock/two-rarefaction flux functions, then sampling the
self-similar solution ``W(x/t)``.  Used by the test suite to validate the
2-4 MacCormack solver's wave speeds and plateau states on the Sod tube.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants

GAMMA = constants.GAMMA


@dataclass(frozen=True)
class RiemannState:
    """One side of the Riemann problem (primitive variables)."""

    rho: float
    u: float
    p: float

    @property
    def c(self) -> float:
        return float(np.sqrt(GAMMA * self.p / self.rho))


def _f_K(p: float, K: RiemannState, gamma: float) -> tuple[float, float]:
    """Toro's flux function f_K(p) and its derivative for one side."""
    if p > K.p:  # shock
        A = 2.0 / ((gamma + 1.0) * K.rho)
        B = (gamma - 1.0) / (gamma + 1.0) * K.p
        sqrt_term = np.sqrt(A / (p + B))
        f = (p - K.p) * sqrt_term
        df = sqrt_term * (1.0 - 0.5 * (p - K.p) / (p + B))
    else:  # rarefaction
        f = (
            2.0
            * K.c
            / (gamma - 1.0)
            * ((p / K.p) ** ((gamma - 1.0) / (2.0 * gamma)) - 1.0)
        )
        df = 1.0 / (K.rho * K.c) * (p / K.p) ** (-(gamma + 1.0) / (2.0 * gamma))
    return float(f), float(df)


def _star_pressure(
    left: RiemannState, right: RiemannState, gamma: float, tol: float = 1e-12
) -> float:
    """Newton iteration for the star-region pressure."""
    # Two-rarefaction initial guess (robust for Sod-like problems).
    z = (gamma - 1.0) / (2.0 * gamma)
    p0 = (
        (left.c + right.c - 0.5 * (gamma - 1.0) * (right.u - left.u))
        / (left.c / left.p**z + right.c / right.p**z)
    ) ** (1.0 / z)
    p = max(p0, 1e-10)
    for _ in range(60):
        fl, dfl = _f_K(p, left, gamma)
        fr, dfr = _f_K(p, right, gamma)
        delta = (fl + fr + right.u - left.u) / (dfl + dfr)
        p_new = p - delta
        if p_new <= 0:
            p_new = 0.5 * p
        if abs(p_new - p) < tol * p:
            return float(p_new)
        p = p_new
    return float(p)


def exact_riemann(
    left: RiemannState,
    right: RiemannState,
    xi: np.ndarray,
    gamma: float = GAMMA,
):
    """Sample the exact solution at similarity coordinates ``xi = x/t``.

    Returns ``(rho, u, p)`` arrays.  Vacuum-generating data is rejected.
    """
    if (
        2.0 * left.c / (gamma - 1.0) + 2.0 * right.c / (gamma - 1.0)
        <= right.u - left.u
    ):
        raise ValueError("initial data generates vacuum")
    xi = np.asarray(xi, dtype=np.float64)
    p_star = _star_pressure(left, right, gamma)
    fl, _ = _f_K(p_star, left, gamma)
    fr, _ = _f_K(p_star, right, gamma)
    u_star = 0.5 * (left.u + right.u) + 0.5 * (fr - fl)

    gm1, gp1 = gamma - 1.0, gamma + 1.0
    rho = np.empty_like(xi)
    u = np.empty_like(xi)
    p = np.empty_like(xi)

    for i, s in enumerate(xi):
        if s <= u_star:  # left of the contact
            K = left
            if p_star > K.p:  # left shock
                rho_star = K.rho * (
                    (p_star / K.p + gm1 / gp1) / (gm1 / gp1 * p_star / K.p + 1.0)
                )
                S = K.u - K.c * np.sqrt(
                    gp1 / (2 * gamma) * p_star / K.p + gm1 / (2 * gamma)
                )
                if s < S:
                    rho[i], u[i], p[i] = K.rho, K.u, K.p
                else:
                    rho[i], u[i], p[i] = rho_star, u_star, p_star
            else:  # left rarefaction
                rho_star = K.rho * (p_star / K.p) ** (1.0 / gamma)
                c_star = K.c * (p_star / K.p) ** (gm1 / (2 * gamma))
                head, tail = K.u - K.c, u_star - c_star
                if s < head:
                    rho[i], u[i], p[i] = K.rho, K.u, K.p
                elif s > tail:
                    rho[i], u[i], p[i] = rho_star, u_star, p_star
                else:  # inside the fan
                    u[i] = 2.0 / gp1 * (K.c + gm1 / 2.0 * K.u + s)
                    c = 2.0 / gp1 * (K.c + gm1 / 2.0 * (K.u - s))
                    rho[i] = K.rho * (c / K.c) ** (2.0 / gm1)
                    p[i] = K.p * (c / K.c) ** (2 * gamma / gm1)
        else:  # right of the contact
            K = right
            if p_star > K.p:  # right shock
                rho_star = K.rho * (
                    (p_star / K.p + gm1 / gp1) / (gm1 / gp1 * p_star / K.p + 1.0)
                )
                S = K.u + K.c * np.sqrt(
                    gp1 / (2 * gamma) * p_star / K.p + gm1 / (2 * gamma)
                )
                if s > S:
                    rho[i], u[i], p[i] = K.rho, K.u, K.p
                else:
                    rho[i], u[i], p[i] = rho_star, u_star, p_star
            else:  # right rarefaction
                rho_star = K.rho * (p_star / K.p) ** (1.0 / gamma)
                c_star = K.c * (p_star / K.p) ** (gm1 / (2 * gamma))
                head, tail = K.u + K.c, u_star + c_star
                if s > head:
                    rho[i], u[i], p[i] = K.rho, K.u, K.p
                elif s < tail:
                    rho[i], u[i], p[i] = rho_star, u_star, p_star
                else:
                    u[i] = 2.0 / gp1 * (-K.c + gm1 / 2.0 * K.u + s)
                    c = 2.0 / gp1 * (K.c - gm1 / 2.0 * (K.u - s))
                    rho[i] = K.rho * (c / K.c) ** (2.0 / gm1)
                    p[i] = K.p * (c / K.c) ** (2 * gamma / gm1)
    return rho, u, p


def sod_solution(x: np.ndarray, t: float, x0: float = 0.5, gamma: float = GAMMA):
    """Exact Sod-tube solution at time ``t`` (diaphragm at ``x0``).

    The classic states: ``(rho, u, p) = (1, 0, 1)`` left, ``(0.125, 0, 0.1)``
    right.  Returns ``(rho, u, p)`` on the given points.
    """
    if t <= 0:
        raise ValueError("t must be positive")
    left = RiemannState(1.0, 0.0, 1.0)
    right = RiemannState(0.125, 0.0, 0.1)
    xi = (np.asarray(x) - x0) / t
    return exact_riemann(left, right, xi, gamma)
