"""Network description interface."""

from __future__ import annotations

import abc


class Network(abc.ABC):
    """Contention-resource description of an interconnect.

    A message from ``src`` to ``dst`` holds every resource named by
    :meth:`link_ids` for ``latency + transfer_time(nbytes)`` seconds.
    Capacities > 1 model switches that carry several concurrent transfers.
    """

    name: str = "network"

    @abc.abstractmethod
    def link_ids(self, src: int, dst: int) -> list[str]:
        """Resource keys a transfer must hold, in canonical order."""

    @abc.abstractmethod
    def capacities(self) -> dict[str, int]:
        """Capacity of every resource key this network can name."""

    @abc.abstractmethod
    def transfer_time(self, nbytes: int) -> float:
        """Wire occupancy seconds for a payload of ``nbytes``."""

    #: Per-message wire latency (protocol framing, path setup), seconds.
    latency: float = 0.0

    def describe(self) -> str:
        return f"{self.name}"

    # -- convenience -------------------------------------------------------------
    def uncontended_message_time(self, nbytes: int) -> float:
        """Latency + occupancy with no competing traffic."""
        return self.latency + self.transfer_time(nbytes)

    def saturation_bandwidth(self) -> float:
        """Aggregate deliverable bytes/second when fully loaded.

        Default: the bottleneck is one unit of the scarcest shared
        resource; subclasses with parallel paths override.
        """
        return 1.0 / self.transfer_time(1) if self.transfer_time(1) > 0 else float("inf")


def per_node_links(src: int, dst: int) -> list[str]:
    """Injection/ejection link pair — the common switch-fabric pattern."""
    return [f"in:{dst}", f"out:{src}"]
