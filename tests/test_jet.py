"""Jet mean profile and inflow excitation."""

import numpy as np
import pytest

from repro import constants
from repro.physics.jet import InflowExcitation, JetProfile, shear_layer_shape
from repro.physics.linearized import GaussianEigenmode


@pytest.fixture
def r():
    return np.linspace(0.02, 5.0, 200)


class TestShapeFunction:
    def test_limits(self):
        assert shear_layer_shape(np.array([0.01]), 0.1)[0] == pytest.approx(1.0, abs=1e-6)
        assert shear_layer_shape(np.array([10.0]), 0.1)[0] == pytest.approx(0.0, abs=1e-6)

    def test_half_at_lip(self):
        assert shear_layer_shape(np.array([1.0]), 0.1)[0] == pytest.approx(0.5)

    def test_monotone_decreasing(self, r):
        g = shear_layer_shape(r, 0.1)
        assert np.all(np.diff(g) <= 1e-12)

    def test_thinner_layer_is_steeper(self):
        r = np.array([0.9, 1.1])
        thin = shear_layer_shape(r, 0.05)
        thick = shear_layer_shape(r, 0.3)
        assert (thin[0] - thin[1]) > (thick[0] - thick[1])


class TestMeanProfile:
    def test_centerline_velocity_is_mach(self, r, profile):
        u = profile.velocity(r)
        assert u[0] == pytest.approx(profile.mach, abs=1e-4)

    def test_freestream_velocity_is_coflow(self, r):
        prof = JetProfile(coflow=0.1)
        assert prof.velocity(r)[-1] == pytest.approx(0.1, abs=1e-4)

    def test_temperature_limits(self, r, profile):
        T = profile.temperature(r)
        assert T[0] == pytest.approx(1.0, abs=1e-3)  # centerline T_c = 1
        assert T[-1] == pytest.approx(profile.t_infinity, abs=1e-3)

    def test_crocco_busemann_exceeds_linear_blend(self, r, profile):
        """Viscous heating lifts T above the linear blend inside the layer."""
        from repro.physics.jet import shear_layer_shape

        g = shear_layer_shape(r, profile.theta)
        T = profile.temperature(r)
        linear = profile.t_infinity + (1.0 - profile.t_infinity) * g
        inside = (g > 0.1) & (g < 0.9)
        assert np.all(T[inside] > linear[inside])

    def test_uniform_pressure_density_from_eos(self, r, profile):
        rho = profile.density(r)
        T = profile.temperature(r)
        p = rho * T / profile.gamma
        assert np.allclose(p, profile.pressure)

    def test_primitives_bundle(self, r, profile):
        rho, u, v, p = profile.primitives(r)
        assert np.all(v == 0.0)
        assert np.allclose(p, 1.0 / constants.GAMMA)
        assert np.all(rho > 0)


class TestExcitation:
    def test_frequency(self, profile):
        exc = InflowExcitation(profile, strouhal=0.125)
        # omega = pi * St * M.
        assert exc.omega == pytest.approx(np.pi * 0.125 * 1.5)

    def test_zero_epsilon_returns_mean(self, r, profile):
        exc = InflowExcitation(profile, epsilon=0.0)
        rho, u, v, p = exc.primitives(r, t=3.7)
        rho0, u0, v0, p0 = profile.primitives(r)
        assert np.array_equal(u, u0)
        assert np.array_equal(rho, rho0)

    def test_periodicity(self, r, profile):
        exc = InflowExcitation(profile, epsilon=1e-3)
        period = 2 * np.pi / exc.omega
        a = exc.primitives(r, t=1.0)
        b = exc.primitives(r, t=1.0 + period)
        for fa, fb in zip(a, b):
            assert np.allclose(fa, fb, atol=1e-12)

    def test_perturbation_scales_with_epsilon(self, r, profile):
        e1 = InflowExcitation(profile, epsilon=1e-3)
        e2 = InflowExcitation(profile, epsilon=2e-3)
        u0 = profile.velocity(r)
        d1 = e1.primitives(r, 0.5)[1] - u0
        d2 = e2.primitives(r, 0.5)[1] - u0
        assert np.allclose(d2, 2 * d1, rtol=1e-9)

    def test_perturbation_localized_at_shear_layer(self, r, profile):
        exc = InflowExcitation(profile, epsilon=1e-2)
        # Maximize over a period to avoid hitting a zero crossing.
        u0 = profile.velocity(r)
        amp = np.zeros_like(r)
        for t in np.linspace(0, 2 * np.pi / exc.omega, 8, endpoint=False):
            amp = np.maximum(amp, np.abs(exc.primitives(r, t)[1] - u0))
        peak_r = r[np.argmax(amp)]
        assert 0.5 < peak_r < 1.8
        assert amp[-1] < 0.05 * amp.max()  # decays toward the far field

    def test_mode_evaluation_cached(self, r, profile):
        exc = InflowExcitation(profile, mode=GaussianEigenmode())
        exc.primitives(r, 0.0)
        exc.primitives(r, 0.1)
        assert len(exc._cache) == 1
