"""Parallel-performance metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    balance_spread,
    crossover,
    efficiency,
    flops_per_byte,
    flops_per_startup,
    minimum_location,
    speedup,
)

pos = st.floats(1e-3, 1e6, allow_nan=False, allow_infinity=False)


class TestSpeedup:
    @given(t1=pos, tp=pos)
    @settings(max_examples=100)
    def test_definition(self, t1, tp):
        assert speedup(t1, tp) == pytest.approx(t1 / tp)

    @given(t1=pos, p=st.integers(1, 64))
    @settings(max_examples=50)
    def test_ideal_efficiency_is_one(self, t1, p):
        assert efficiency(t1, t1 / p, p) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)


class TestTable2Ratios:
    def test_paper_values(self):
        """FPs/Byte 580 at p=2 for NS; 405 for Euler (Table 2, col 1)."""
        assert flops_per_byte(145_000e6, 2, 125e6) == pytest.approx(580)
        assert flops_per_byte(77_000e6, 2, 95e6) == pytest.approx(405.3, rel=1e-3)
        assert flops_per_startup(145_000e6, 2, 80_000) == pytest.approx(906_250)

    @given(p=st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=10)
    def test_halving_property(self, p):
        """Per-proc volume constant => FPs/byte halves with doubling p."""
        a = flops_per_byte(145_000e6, p, 125e6)
        b = flops_per_byte(145_000e6, 2 * p, 125e6)
        assert b == pytest.approx(a / 2)

    def test_single_processor_infinite(self):
        assert flops_per_byte(1e9, 1, 1e6) == float("inf")
        assert flops_per_startup(1e9, 1, 100) == float("inf")


class TestCurveAnalysis:
    def test_minimum_location(self):
        xs = [1, 2, 4, 8, 16]
        ys = [100, 60, 40, 35, 50]
        assert minimum_location(xs, ys) == (8, 35)

    def test_minimum_validation(self):
        with pytest.raises(ValueError):
            minimum_location([], [])
        with pytest.raises(ValueError):
            minimum_location([1, 2], [1.0])

    def test_crossover(self):
        xs = [2, 4, 8, 16]
        a = [10, 6, 3, 2]
        b = [8, 5, 3.5, 3]
        assert crossover(xs, a, b) == 8

    def test_no_crossover(self):
        assert crossover([1, 2], [5, 4], [3, 2]) is None

    def test_balance_spread(self):
        assert balance_spread([10.0, 10.0, 10.0]) == 0.0
        assert balance_spread([9.0, 10.0, 11.0]) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            balance_spread([])
