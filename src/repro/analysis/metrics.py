"""Parallel-performance metrics used throughout the evaluation."""

from __future__ import annotations

from typing import Sequence


def speedup(t1: float, tp: float) -> float:
    """Classic speedup ``T(1) / T(p)``."""
    if tp <= 0:
        raise ValueError("parallel time must be positive")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """Parallel efficiency ``speedup / p``."""
    if p < 1:
        raise ValueError("p must be >= 1")
    return speedup(t1, tp) / p


def flops_per_byte(total_flops: float, nprocs: int, volume_bytes: float) -> float:
    """Table 2's FPs/Byte: per-processor flops over per-processor volume.

    The per-processor communication volume of the axial decomposition is
    independent of the processor count (each interior processor exchanges
    fixed-width boundary columns), so this halves with each doubling of
    ``nprocs`` — exactly the paper's column.
    """
    if nprocs < 2:
        return float("inf")
    return (total_flops / nprocs) / volume_bytes


def flops_per_startup(total_flops: float, nprocs: int, startups: float) -> float:
    """Table 2's FPs/Start-up."""
    if nprocs < 2:
        return float("inf")
    return (total_flops / nprocs) / startups


def minimum_location(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """``(x, y)`` of the minimum of a sampled curve (e.g. the Ethernet
    execution-time minimum near 8 processors)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length, non-empty")
    k = min(range(len(ys)), key=lambda i: ys[i])
    return xs[k], ys[k]


def balance_spread(values: Sequence[float]) -> float:
    """Relative spread ``(max - min) / mean`` — Figure 13's load balance."""
    if not values:
        raise ValueError("empty sequence")
    m = sum(values) / len(values)
    if m == 0:
        return 0.0
    return (max(values) - min(values)) / m


def crossover(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> float | None:
    """Smallest x where curve A drops to or below curve B (None if never).

    Used for the T3D / ALLNODE-S crossover near 8 processors.
    """
    for x, a, b in zip(xs, ys_a, ys_b):
        if a <= b:
            return x
    return None
