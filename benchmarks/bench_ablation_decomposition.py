"""Ablation: axial vs radial blocking (the paper's Section 8 future work).

"We will then explore other problem decompositions such as blocking along
the radial direction" — both decompositions are *executable* in this
package (bitwise-identical to the serial solver), so this bench measures
the real communication of each with the instrumented distributed solver on
a paper-aspect-ratio grid (nx : nr = 2.5 : 1) and reports the contrast that
justifies the paper's Section-5 choice.
"""

from repro import jet_scenario
from repro.analysis.report import format_table
from repro.parallel.decomposition import AxialDecomposition, RadialDecomposition
from repro.parallel.runner import ParallelJetSolver

from conftest import run_and_print


def _study() -> str:
    # Paper aspect ratio (250x100) at reduced size: 100x40.
    steps = 4
    sc = jet_scenario(nx=100, nr=40, viscous=True)
    rows = []
    for decomp, shape in [
        ("axial", "columns of nr=40"),
        ("radial", "rows of nx=100"),
    ]:
        res = ParallelJetSolver(
            sc.state, sc.solver.config, nranks=4, decomposition=decomp
        ).run(steps)
        st = res.interior_rank_stats
        rows.append(
            [
                f"{decomp} blocks",
                f"{st.sends / steps:.1f}",
                f"{st.bytes_sent / steps / 1024:.1f}",
                shape,
            ]
        )
    table = format_table(
        ["decomposition", "sends/step", "KB/step/proc", "message shape"],
        rows,
        title="Decomposition study (measured, real distributed solver, p=4):",
    )
    d_ax = AxialDecomposition(250, 16)
    d_ra = RadialDecomposition(100, 16)
    note = (
        f"\nLoad balance at p=16 on the paper grid: axial blocks "
        f"{min(d_ax.sizes())}-{max(d_ax.sizes())} columns; radial blocks "
        f"{min(d_ra.sizes())}-{max(d_ra.sizes())} rows.  Radial blocking "
        "exchanges nx-long rows (2.5x the bytes per line on the paper's "
        "grid) and turns the characteristic outflow treatment into a "
        "collective step — the measured volumes above quantify the paper's "
        "Section-5 decision to block axially."
    )

    # Predict what the paper's Section-8 study would have measured: the
    # same platforms driven by the radial-blocking workload (x2.5 volume).
    from repro.machines.platforms import LACE_560, LACE_560_ETHERNET
    from repro.simulate.machine import SimulatedMachine
    from repro.simulate.workload import NAVIER_STOKES, Workload

    axial_w = Workload.paper(NAVIER_STOKES)
    radial_w = axial_w.with_volume_scale(2.5, label="radial-blocks")
    rows2 = []
    for plat in (LACE_560, LACE_560_ETHERNET):
        for label, w in (("axial", axial_w), ("radial", radial_w)):
            times = [
                SimulatedMachine(plat, p).run(w, steps_window=20).execution_time
                for p in (4, 8, 16)
            ]
            rows2.append(
                [plat.name, label] + [f"{t:,.0f}" for t in times]
            )
    table2 = format_table(
        ["platform", "blocking", "p=4", "p=8", "p=16"],
        rows2,
        title="\nPredicted 1995-platform impact (DES, paper NS workload "
        "with radial volumes):",
    )
    return table + "\n" + table2 + (
        "\nOn the switch the penalty is modest (bandwidth headroom); on "
        "Ethernet the 2.5x volume pulls saturation several processors "
        "earlier — the answer to the paper's open Section-8 question."
    )


def test_decomposition_ablation(benchmark):
    run_and_print(
        benchmark, _study, "Ablation: axial vs radial domain decomposition"
    )
