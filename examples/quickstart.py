#!/usr/bin/env python3
"""Quickstart: simulate the excited supersonic jet and inspect the flow.

Runs the paper's Navier-Stokes jet configuration (Mach 1.5, Re 1.2e6,
Strouhal 1/8) at reduced resolution for a few hundred steps, prints bulk
diagnostics, and renders the axial-momentum field as an ASCII contour —
the same quantity as the paper's Figure 1.

Usage::

    python examples/quickstart.py [--nx 96] [--nr 40] [--steps 400]
"""

import argparse

import numpy as np

from repro import jet_scenario
from repro.analysis.report import ascii_contour


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=96)
    ap.add_argument("--nr", type=int, default=40)
    ap.add_argument("--steps", type=int, default=400)
    args = ap.parse_args()

    sc = jet_scenario(nx=args.nx, nr=args.nr, viscous=True)
    print(f"Grid {args.nx}x{args.nr}, domain 50x5 jet radii, dt adaptive (CFL 0.5)")
    print(f"Jet: Mach {sc.solver.config.mach}, Re {sc.solver.config.reynolds:.1e}")

    def monitor(solver):
        st = solver.state
        print(
            f"  step {solver.nstep:5d}  t={solver.t:7.2f}  "
            f"max|rho*u|={np.abs(st.axial_momentum).max():.4f}  "
            f"max|v|={np.abs(st.v).max():.4f}"
        )

    sc.solver.run(args.steps, monitor=monitor, monitor_every=max(args.steps // 5, 1))

    print()
    print(ascii_contour(sc.state.axial_momentum, width=96, height=20,
                        title="Axial momentum rho*u (jet shear layer rolling up)"))
    print(f"\nWall time: {sc.solver.wall_time:.2f}s "
          f"({1e3 * sc.solver.wall_time / sc.solver.nstep:.1f} ms/step)")


if __name__ == "__main__":
    main()
