"""The repro.api.run facade: routing, RunResult, shims, acceptance."""

import json

import numpy as np
import pytest

from repro import RunResult, jet_scenario, run, scenario_by_name
from repro.analysis.metrics import component_breakdown
from repro.obs import Trace, Tracer, load_trace
from repro.parallel.runner import serial_reference

SMALL = dict(nx=48, nr=24)


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


def test_serial_route_matches_low_level_reference():
    sc = jet_scenario(**SMALL)
    res = run(sc, steps=6)
    assert isinstance(res, RunResult)
    assert res.mode == "serial" and res.nprocs == 1 and res.version is None
    ref = serial_reference(sc.state, sc.solver.config, 6)
    assert np.array_equal(res.state.q, ref.q)
    assert res.steps == 6 and res.t > 0
    assert res.timings.wall_seconds > 0
    # the input scenario was not mutated
    assert not np.array_equal(res.state.q, sc.state.q)


def test_parallel_route_bitwise_identical_to_serial():
    serial = run("jet", steps=6, **SMALL)
    par = run("jet", steps=6, nprocs=4, **SMALL)
    assert par.mode == "parallel" and par.nprocs == 4
    assert par.version == 7  # the facade default
    assert np.array_equal(par.state.q, serial.state.q)
    assert len(par.per_rank_stats) == 4
    assert len(par.timings.per_rank_wall) == 4
    assert par.total_stats.sends > 0


@pytest.mark.parametrize("name", ["jet", "jet-euler"])
def test_parallel_route_other_decompositions(name):
    """One exchange core, three decompositions: radial and 2-D runs must be
    bitwise-equal to the serial reference *and* to the axial route — the
    contract behind ``RunRequest.fingerprint()`` treating the decomposition
    as route-irrelevant."""
    serial = run(name, steps=6, **SMALL)
    axial = run(name, steps=6, nprocs=2, **SMALL)
    rad = run(name, steps=6, nprocs=2, decomposition="radial", **SMALL)
    two_d = run(name, steps=6, nprocs=4, decomposition="2d", px=2, pr=2, **SMALL)
    assert np.array_equal(axial.state.q, serial.state.q)
    assert np.array_equal(rad.state.q, serial.state.q)
    assert np.array_equal(two_d.state.q, serial.state.q)
    assert rad.t == serial.t and two_d.t == serial.t


def test_simulated_route_by_platform_name():
    res = run("jet", platform="Cray T3D", nprocs=16, version=5)
    assert res.mode == "simulated" and res.state is None and res.t is None
    assert res.sim is not None and res.sim.execution_time > 0
    assert res.steps == res.sim.total_steps
    assert "Cray T3D" in res.summary()
    # Euler scenario routes to the Euler workload
    eu = run("jet-euler", platform="Cray T3D", nprocs=16, version=5)
    assert eu.sim.execution_time < res.sim.execution_time


def test_simulated_route_shared_memory_ymp():
    res = run("jet", platform="Cray Y-MP", nprocs=4, version=5, trace=True)
    assert res.mode == "simulated" and res.sim.execution_time > 0
    # the analytic model still yields per-rank counters in the trace
    assert res.trace.counter(0, "busy_seconds") > 0


def test_scenario_registry_and_kw_forwarding():
    sc = scenario_by_name("advection", n=16)
    assert sc.grid.nx == 16
    res = run("advection", steps=2, n=16)
    assert res.scenario == "advection" and res.state.is_physical()
    res2 = sc.run(2)  # Scenario.run goes through the facade
    assert np.array_equal(res.state.q, res2.state.q)


def test_interior_rank_stats_raises_without_interior_rank():
    res = run("jet", steps=2, nprocs=2, **SMALL)
    with pytest.raises(ValueError, match="nprocs=2"):
        res.interior_rank_stats
    serial = run("jet", steps=2, **SMALL)
    with pytest.raises(ValueError, match="serial"):
        serial.interior_rank_stats
    ok = run("jet", steps=2, nprocs=3, **SMALL)
    assert ok.interior_rank_stats.sends > 0


# ---------------------------------------------------------------------------
# Errors and deprecations
# ---------------------------------------------------------------------------


def test_missing_steps_raises():
    with pytest.raises(TypeError, match="steps is required"):
        run("jet", **SMALL)


def test_unknown_scenario_name():
    with pytest.raises(KeyError, match="unknown scenario"):
        run("warp-drive", steps=1)


def test_scenario_kwargs_rejected_with_scenario_object():
    sc = jet_scenario(**SMALL)
    with pytest.raises(TypeError, match="only valid when the scenario is"):
        run(sc, steps=1, nx=99)


def test_run_serial_reference_shim_warns_and_matches():
    from repro.parallel.runner import run_serial_reference

    sc = jet_scenario(**SMALL)
    with pytest.warns(DeprecationWarning, match="repro.api.run"):
        old = run_serial_reference(sc.state, sc.solver.config, 3)
    assert np.array_equal(old.q, serial_reference(sc.state, sc.solver.config, 3).q)


# ---------------------------------------------------------------------------
# Tracing through the facade
# ---------------------------------------------------------------------------


def test_trace_true_collects_trace():
    res = run("jet", steps=2, **SMALL, trace=True)
    assert isinstance(res.trace, Trace)
    assert res.trace.total("solver.step") > 0
    assert res.trace_path is None


def test_trace_accepts_existing_tracer():
    tr = Tracer(name="mine")
    res = run("jet", steps=2, **SMALL, trace=tr)
    assert res.trace is tr.trace and res.trace.meta["name"] == "mine"


def test_untraced_run_leaves_no_trace():
    res = run("jet", steps=2, **SMALL)
    assert res.trace is None


def test_trace_path_writes_chrome_file(tmp_path):
    p = tmp_path / "out.json"
    res = run("jet", steps=2, nprocs=2, **SMALL, trace=str(p))
    assert res.trace_path == str(p)
    doc = json.loads(p.read_text())
    assert doc["traceEvents"]
    assert load_trace(str(p)).ranks() == [0, 1]


# ---------------------------------------------------------------------------
# component_breakdown cross-checks
# ---------------------------------------------------------------------------


def test_component_breakdown_matches_des_cost_model():
    """The trace-derived split must equal the simulator's own timeline
    accounting (the analytic cost model) exactly."""
    res = run(
        "jet", platform="LACE/560+ALLNODE-S", nprocs=4, version=5,
        steps_window=4, trace=True,
    )
    bd = component_breakdown(res.trace)
    assert bd.source == "simulated"
    tls = res.sim.timelines
    n = len(tls)
    assert bd.computation == pytest.approx(sum(t.compute for t in tls) / n)
    assert bd.startup == pytest.approx(sum(t.library for t in tls) / n)
    assert bd.transfer == pytest.approx(sum(t.comm_wait for t in tls) / n)


def test_component_breakdown_rejects_empty_trace():
    with pytest.raises(ValueError, match="no sim"):
        component_breakdown(Trace())


def test_acceptance_traced_4rank_paper_grid(tmp_path):
    """ISSUE acceptance: a traced 4-rank run of the 125x50 jet exports
    valid Chrome-trace JSON whose per-rank compute/communicate breakdown
    agrees with the independent measurements within 15%."""
    p = tmp_path / "jet4.json"
    res = run("jet", steps=8, nprocs=4, nx=125, nr=50, trace=str(p))

    doc = json.loads(p.read_text())
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"M", "X"} <= phases
    assert len(doc["traceEvents"]) > 100

    bd = component_breakdown(res.trace)
    assert bd.source == "measured"
    assert len(bd.per_rank) == 4

    # total (compute + comm) vs the independently accumulated per-rank wall
    wall = sum(res.timings.per_rank_wall) / 4
    assert bd.total == pytest.approx(wall, rel=0.15)
    # communication vs the CommStats time dimension (measured separately
    # inside the message library)
    comm = sum(st.comm_seconds for st in res.per_rank_stats) / 4
    assert bd.communication == pytest.approx(comm, rel=0.15)

    # the exported file reproduces the in-memory breakdown
    bd2 = component_breakdown(load_trace(str(p)))
    assert bd2.total == pytest.approx(bd.total, rel=1e-3)
    assert bd2.communication == pytest.approx(bd.communication, rel=1e-3)
