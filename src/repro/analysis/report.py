"""Plain-text rendering: aligned tables, log-log series charts, contours.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers render them readably in a terminal and in the
captured benchmark output files.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Align columns; numbers right-aligned, text left-aligned."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for j, c in enumerate(row):
            widths[j] = max(widths[j], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(
                c.rjust(widths[j]) if _is_num(row, j) else c.ljust(widths[j])
                for j, c in enumerate(row)
            )
        )
    return "\n".join(lines)


def _fmt(c: object) -> str:
    if isinstance(c, float):
        if c == 0:
            return "0"
        if abs(c) >= 1e5 or abs(c) < 1e-2:
            return f"{c:.3g}"
        return f"{c:,.1f}" if abs(c) < 1e4 else f"{c:,.0f}"
    return str(c)


def _is_num(row: Sequence[str], j: int) -> bool:
    s = row[j].replace(",", "").replace(".", "").replace("-", "")
    return s.replace("e", "").replace("+", "").isdigit()


def render_series(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    xlabel: str = "Number of Processors",
    ylabel: str = "Execution Time (sec)",
    width: int = 72,
    height: int = 22,
    loglog: bool = True,
) -> str:
    """ASCII chart of several curves over a shared x grid (log-log like the
    paper's figures by default)."""
    marks = "ox+*#@%&"
    fx = math.log10 if loglog else (lambda v: v)
    fy = math.log10 if loglog else (lambda v: v)
    all_y = [y for ys in series.values() for y in ys if y > 0]
    if not all_y:
        return "(no data)"
    x0, x1 = fx(min(xs)), fx(max(xs))
    y0, y1 = fy(min(all_y)), fy(max(all_y))
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1
    canvas = [[" "] * width for _ in range(height)]
    for k, (label, ys) in enumerate(series.items()):
        m = marks[k % len(marks)]
        for x, y in zip(xs, ys):
            if y <= 0:
                continue
            col = int((fx(x) - x0) / (x1 - x0) * (width - 1))
            row = int((fy(y) - y0) / (y1 - y0) * (height - 1))
            canvas[height - 1 - row][col] = m
    lines = []
    if title:
        lines.append(title)
    top = f"{10**y1:.0f}" if loglog else f"{y1:.3g}"
    bot = f"{10**y0:.0f}" if loglog else f"{y0:.3g}"
    lines.append(f"{ylabel} [{bot} .. {top}]" + (" (log-log)" if loglog else ""))
    lines.append("+" + "-" * width + "+")
    for row in canvas:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"  {xlabel}: {min(xs)} .. {max(xs)}")
    for k, label in enumerate(series):
        lines.append(f"  {marks[k % len(marks)]} = {label}")
    return "\n".join(lines)


def render_gantt(
    result,
    t0: float | None = None,
    t1: float | None = None,
    width: int = 96,
    title: str = "",
) -> str:
    """ASCII Gantt chart of a traced simulation window.

    ``result`` is a :class:`repro.simulate.machine.RunResult` from a run
    with ``trace=True``.  Each rank gets one row; ``#`` = compute,
    ``+`` = message-library software, ``.`` = non-overlapped wait,
    space = done/not started.  Defaults to the window around the second
    simulated step (past the startup skew).
    """
    timelines = result.timelines
    if not timelines or timelines[0].segments is None:
        raise ValueError("run the simulation with trace=True first")
    makespan = result.makespan_window
    steps = max(result.steps_window, 1)
    if t0 is None:
        t0 = makespan / steps
    if t1 is None:
        t1 = min(2.5 * makespan / steps, makespan)
    span = max(t1 - t0, 1e-12)
    glyph = {"compute": "#", "library": "+", "wait": "."}
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"window [{t0:.4f}s, {t1:.4f}s] of the simulated run "
        "(# compute, + library, . wait)"
    )
    for t in timelines:
        row = [" "] * width
        for seg in t.segments:
            if seg.end <= t0 or seg.start >= t1:
                continue
            a = int((max(seg.start, t0) - t0) / span * (width - 1))
            b = int((min(seg.end, t1) - t0) / span * (width - 1))
            for k in range(a, max(b, a) + 1):
                row[k] = glyph.get(seg.kind, "?")
        lines.append(f"rank {t.rank:2d} |{''.join(row)}|")
    return "\n".join(lines)


def ascii_contour(
    field: np.ndarray,
    width: int = 100,
    height: int = 24,
    levels: str = " .:-=+*#%@",
    title: str = "",
) -> str:
    """Character contour plot of a 2-D field (the paper's Figure 1 style).

    The field is sampled to ``width x height`` and binned into the level
    ramp.  The first array axis renders horizontally (axial direction).
    """
    f = np.asarray(field, dtype=np.float64)
    nx, nr = f.shape
    xi = np.linspace(0, nx - 1, width).astype(int)
    ri = np.linspace(0, nr - 1, height).astype(int)
    sampled = f[np.ix_(xi, ri)]
    lo, hi = float(sampled.min()), float(sampled.max())
    span = hi - lo if hi > lo else 1.0
    n = len(levels)
    idx = np.clip(((sampled - lo) / span * (n - 1)).astype(int), 0, n - 1)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"range [{lo:.4g}, {hi:.4g}]  (x -> right, r -> up)")
    for j in range(height - 1, -1, -1):
        lines.append("".join(levels[idx[i, j]] for i in range(width)))
    return "\n".join(lines)
