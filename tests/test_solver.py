"""The serial Navier-Stokes/Euler solvers on verification problems."""

import numpy as np
import pytest

from repro import (
    EulerSolver,
    NavierStokesSolver,
    SolverConfig,
    acoustic_pulse_scenario,
    jet_scenario,
    periodic_advection_scenario,
    shock_tube_scenario,
)
from repro.grid import Grid
from repro.physics.state import FlowState


class TestConservation:
    @pytest.mark.parametrize("dissipation", [0.0, 0.02])
    def test_periodic_advection_conserves(self, dissipation):
        sc = periodic_advection_scenario(n=24)
        sc.solver.config.dissipation = dissipation
        t0 = sc.state.conserved_totals(radial_weight=False)
        sc.solver.run(40)
        t1 = sc.state.conserved_totals(radial_weight=False)
        assert np.allclose(t1, t0, rtol=0, atol=1e-12 * np.abs(t0).max())

    def test_acoustic_pulse_conserves(self):
        sc = acoustic_pulse_scenario(n=24)
        t0 = sc.state.conserved_totals(radial_weight=False)
        sc.solver.run(30)
        t1 = sc.state.conserved_totals(radial_weight=False)
        assert np.allclose(t1, t0, rtol=0, atol=1e-12 * np.abs(t0).max())


class TestAdvectionAccuracy:
    def test_entropy_wave_advects(self):
        sc = periodic_advection_scenario(n=48, mach=0.5, amplitude=1e-3)
        sc.solver.config.dissipation = 0.0
        sc.solver.config.dt = 1e-3
        steps = 200
        sc.solver.run(steps)
        x = sc.grid.xmesh()
        lam = sc.grid.nx * sc.grid.dx
        exact = 1.0 + 1e-3 * np.sin(2 * np.pi * (x - 0.5 * sc.solver.t) / lam)
        err = np.abs(sc.state.rho - exact).max()
        assert err < 5e-6

    def test_spatial_convergence_high_order(self):
        """Density-wave error drops at better than 3rd order with grid
        refinement at fixed small dt (4th-order interior scheme)."""
        errs = []
        for n in (24, 48):
            sc = periodic_advection_scenario(n=n, mach=0.5, amplitude=1e-3)
            sc.solver.config.dissipation = 0.0
            sc.solver.config.dt = 5e-4
            steps = 100
            sc.solver.run(steps)
            x = sc.grid.xmesh()
            lam = sc.grid.nx * sc.grid.dx
            exact = 1.0 + 1e-3 * np.sin(
                2 * np.pi * (x - 0.5 * sc.solver.t) / lam
            )
            errs.append(np.abs(sc.state.rho - exact).max())
        order = np.log2(errs[0] / errs[1])
        assert order > 3.0, f"measured order {order:.2f}"


class TestAcousticPulse:
    def test_pulse_propagates_symmetrically(self):
        sc = acoustic_pulse_scenario(n=48, amplitude=1e-4)
        sc.solver.run(40)
        p = sc.state.p
        # The domain and initial data are symmetric under x <-> r.
        assert np.allclose(p, p.T, atol=1e-10)
        assert sc.state.is_physical()

    def test_wave_leaves_origin(self):
        sc = acoustic_pulse_scenario(n=48, amplitude=1e-4)
        p0_center = sc.state.p[24, 24]
        sc.solver.run(60)
        # The pulse peak has moved off the center.
        assert sc.state.p[24, 24] < p0_center


class TestShockTube:
    def test_sod_wave_structure(self):
        sc = shock_tube_scenario(nx=200, nr=8)
        sc.solver.run(180)
        rho = sc.state.rho[:, 4]
        # Left state intact, right state intact, monotone-ish decrease.
        assert rho[5] == pytest.approx(1.0, abs=0.02)
        assert rho[-5] == pytest.approx(0.125, abs=0.02)
        # Contact/shock plateau between the states exists.
        assert rho.min() >= 0.1
        assert sc.state.is_physical()

    def test_shock_moves_right(self):
        sc = shock_tube_scenario(nx=200, nr=8)
        sc.solver.run(100)
        t = sc.solver.t
        rho = sc.state.rho[:, 4]
        # Sod shock speed ~ 1.75 in sound units of the left chamber; our
        # nondimensionalization has c_left = sqrt(1.4) for (rho,p)=(1,1).
        front = sc.grid.x[np.argmax(rho < 0.15)]
        assert front > 0.5 + 0.8 * t  # moved well right of the diaphragm


class TestJetRuns:
    def test_short_viscous_run_stays_physical(self):
        sc = jet_scenario(nx=48, nr=24, viscous=True)
        sc.solver.run(60)
        assert sc.state.is_physical()
        # Centerline momentum preserved near inflow.
        assert sc.state.axial_momentum[0, 0] == pytest.approx(1.5, rel=0.05)

    def test_euler_and_ns_agree_early(self):
        """At Re 1.2e6 viscosity is tiny: early flow fields nearly match."""
        ns = jet_scenario(nx=48, nr=24, viscous=True)
        eu = jet_scenario(nx=48, nr=24, viscous=False)
        eu.solver.config.dt = ns.solver.config.dt = 0.01
        ns.solver.run(20)
        eu.solver.run(20)
        diff = np.abs(ns.state.q - eu.state.q).max()
        assert diff < 1e-3

    def test_excitation_perturbs_flow_field(self):
        # theta = 0.25 keeps the shear layer resolved on the coarse grid;
        # comparing against an unexcited twin isolates the excitation from
        # the (shared) startup transient of the discrete profile.
        quiet = jet_scenario(nx=64, nr=24, viscous=False, epsilon=0.0, theta=0.25)
        excited = jet_scenario(nx=64, nr=24, viscous=False, epsilon=1e-3, theta=0.25)
        quiet.solver.config.dt = excited.solver.config.dt = 0.02
        quiet.solver.run(150)
        excited.solver.run(150)
        d = np.abs(excited.state.v - quiet.state.v)
        assert d.max() > 1e-4  # the forcing entered and propagated
        # ... and is localized around the shear layer (r ~ 1), not noise.
        j_peak = np.unravel_index(np.argmax(d), d.shape)[1]
        assert quiet.grid.r[j_peak] < 2.5

    def test_inflow_pinned_to_profile(self):
        sc = jet_scenario(nx=48, nr=24, viscous=True, epsilon=0.0)
        sc.solver.run(30)
        rho, u, v, p = sc.solver.config.boundary.inflow.primitives(
            sc.grid.r, sc.solver.t
        )
        assert np.allclose(sc.state.q[0, 0, :], rho)
        assert np.allclose(sc.state.q[1, 0, :], rho * u)

    def test_monitor_callback(self):
        sc = jet_scenario(nx=40, nr=20)
        seen = []
        sc.solver.run(20, monitor=lambda s: seen.append(s.nstep), monitor_every=5)
        assert seen == [5, 10, 15, 20]

    def test_fixed_dt_respected(self):
        sc = jet_scenario(nx=40, nr=20)
        sc.solver.config.dt = 0.003
        sc.solver.run(10)
        assert sc.solver.t == pytest.approx(0.03)


class TestFilter:
    def test_filter_damps_sawtooth(self):
        g = Grid(nx=16, nr=16, length_x=1.0, length_r=1.0)
        saw = 1.0 + 0.01 * (-1.0) ** np.arange(16)[:, None] * np.ones((1, 16))
        st = FlowState.from_primitive(g, saw, 0.0, 0.0, 1 / 1.4)
        cfg = SolverConfig(
            viscous=False, axisymmetric=False, periodic_x=True,
            periodic_r=True, boundary=None, dissipation=0.02,
        )
        solver = EulerSolver(st, cfg)
        rough0 = np.abs(np.diff(st.rho, axis=0)).max()
        q = solver.apply_filter(st.q.copy())
        rough1 = np.abs(np.diff(q[0], axis=0)).max()
        assert rough1 < 0.75 * rough0

    def test_filter_inactive_on_smooth_field(self):
        sc = periodic_advection_scenario(n=32)
        q = sc.state.q.copy()
        filtered = sc.solver.apply_filter(q.copy())
        # Smooth sinusoid: 4th difference ~ (2 pi h)^4 ~ tiny.
        assert np.abs(filtered - q).max() < 5e-5

    def test_zero_coefficient_identity(self):
        sc = periodic_advection_scenario(n=16)
        sc.solver.config.dissipation = 0.0
        q = sc.state.q.copy()
        assert sc.solver.apply_filter(q) is q


class TestKernelBackends:
    """Backend choice must never change the numbers (ISSUE tentpole)."""

    @pytest.mark.parametrize("viscous", [True, False], ids=["ns", "euler"])
    def test_fused_bitwise_identical(self, viscous):
        ref = jet_scenario(nx=48, nr=24, viscous=viscous)
        ref.solver.run(12)
        sc = jet_scenario(nx=48, nr=24, viscous=viscous)
        sc.solver.config.backend = "fused"
        solver = type(sc.solver)(sc.state, sc.solver.config)
        solver.run(12)
        assert np.array_equal(solver.state.q, ref.state.q)

    def test_fused_power_law_viscosity(self):
        """The mu(T) field path also runs through the fused kernels."""
        ref = jet_scenario(nx=40, nr=20, viscous=True)
        ref.solver.config.mu_exponent = 0.7
        ref.solver.config.dt = 0.01
        ref.solver.run(8)
        sc = jet_scenario(nx=40, nr=20, viscous=True)
        sc.solver.config.mu_exponent = 0.7
        sc.solver.config.dt = 0.01
        sc.solver.config.backend = "fused"
        solver = type(sc.solver)(sc.state, sc.solver.config)
        solver.run(8)
        assert np.array_equal(solver.state.q, ref.state.q)

    def test_fused_planar_periodic(self):
        """Planar/periodic verification mode under the fused kernels."""
        ref = periodic_advection_scenario(n=24)
        ref.solver.run(20)
        sc = periodic_advection_scenario(n=24)
        sc.solver.config.backend = "fused"
        solver = type(sc.solver)(sc.state, sc.solver.config)
        solver.run(20)
        assert np.array_equal(solver.state.q, ref.state.q)

    def test_boundary_strip_snapshot_width(self):
        """The pre-step copy is the 5-column outflow strip, not the state."""
        sc = jet_scenario(nx=48, nr=24, viscous=False)
        tail = sc.solver._boundary_snapshot()
        assert tail.shape == (4, 5, 24)
        assert np.array_equal(tail, sc.state.q[:, -5:, :])

    def test_no_snapshot_without_outflow(self):
        cfg = SolverConfig(
            viscous=False, axisymmetric=False, periodic_x=True,
            periodic_r=True, boundary=None,
        )
        g = Grid(nx=16, nr=16, length_x=1.0, length_r=1.0)
        st = FlowState.from_primitive(
            g, np.ones((16, 16)), 0.0, 0.0, 1 / 1.4
        )
        solver = EulerSolver(st, cfg)
        assert solver._boundary_snapshot() is None


class TestTemperatureDependentViscosity:
    def test_power_law_changes_solution(self):
        from repro import jet_scenario

        a = jet_scenario(nx=40, nr=20, viscous=True)
        b = jet_scenario(nx=40, nr=20, viscous=True)
        b.solver.config.mu_exponent = 0.7
        a.solver.config.dt = b.solver.config.dt = 0.01
        a.solver.run(10)
        b.solver.run(10)
        assert b.state.is_physical()
        assert np.abs(a.state.q - b.state.q).max() > 0

    def test_exponent_zero_is_constant_mu(self):
        from repro import jet_scenario

        a = jet_scenario(nx=40, nr=20, viscous=True)
        T = a.state.T
        assert np.isscalar(a.solver.fm._mu_field(T))

    def test_hotter_gas_is_more_viscous(self):
        from repro import jet_scenario

        sc = jet_scenario(nx=40, nr=20, viscous=True)
        sc.solver.config.mu_exponent = 0.7
        mu = sc.solver.fm._mu_field(sc.state.T)
        # Centerline (T=1) vs cold freestream (T=0.5).
        assert mu[0, 0] > mu[0, -1]
