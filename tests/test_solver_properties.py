"""Property-based tests of the solver on randomized smooth states."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EulerSolver, NavierStokesSolver, SolverConfig
from repro.grid import Grid
from repro.physics.state import FlowState


def _smooth_periodic_state(grid: Grid, seed: int, amplitude: float) -> FlowState:
    """A random smooth (low-wavenumber) periodic perturbation of rest."""
    rng = np.random.default_rng(seed)
    kx = 2 * np.pi / (grid.nx * grid.dx)
    kr = 2 * np.pi / (grid.nr * grid.dr)
    x, r = grid.xmesh(), grid.rmesh()

    def field():
        out = np.zeros(grid.shape)
        for _ in range(3):
            mx, mr = rng.integers(0, 3, size=2)
            phx, phr = rng.uniform(0, 2 * np.pi, size=2)
            out += rng.uniform(-1, 1) * np.cos(mx * kx * x + phx) * np.cos(
                mr * kr * r + phr
            )
        return out / 3.0

    rho = 1.0 + amplitude * field()
    u = amplitude * field()
    v = amplitude * field()
    p = 1.0 / 1.4 * (1.0 + amplitude * field())
    return FlowState.from_primitive(grid, rho, u, v, p)


def _planar_config(**kw) -> SolverConfig:
    return SolverConfig(
        viscous=False,
        axisymmetric=False,
        periodic_x=True,
        periodic_r=True,
        boundary=None,
        cfl=0.3,
        **kw,
    )


class TestRandomizedStability:
    @given(seed=st.integers(0, 10_000), amplitude=st.floats(1e-6, 0.05))
    @settings(max_examples=25, deadline=None)
    def test_smooth_states_stay_physical(self, seed, amplitude):
        grid = Grid(nx=12, nr=12, length_x=1.0, length_r=1.0)
        state = _smooth_periodic_state(grid, seed, amplitude)
        solver = EulerSolver(state, _planar_config())
        solver.run(5)
        assert state.is_physical()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_conservation_for_any_smooth_state(self, seed):
        grid = Grid(nx=10, nr=10, length_x=1.0, length_r=1.0)
        state = _smooth_periodic_state(grid, seed, 0.02)
        solver = EulerSolver(state, _planar_config())
        t0 = state.conserved_totals(radial_weight=False)
        solver.run(8)
        t1 = state.conserved_totals(radial_weight=False)
        assert np.allclose(t1, t0, rtol=0, atol=1e-11 * max(np.abs(t0).max(), 1))

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_viscosity_damps_kinetic_energy(self, seed):
        """With zero forcing, viscosity must not create kinetic energy."""
        grid = Grid(nx=12, nr=12, length_x=1.0, length_r=1.0)
        state = _smooth_periodic_state(grid, seed, 0.02)

        def ke(s):
            return float(np.sum(s.rho * (s.u**2 + s.v**2)))

        inviscid = EulerSolver(
            FlowState(grid, state.q.copy()), _planar_config()
        )
        viscous = NavierStokesSolver(
            FlowState(grid, state.q.copy()), _planar_config(mu=5e-3)
        )
        # Same fixed dt for comparability.
        inviscid.config.dt = viscous.config.dt = 2e-3
        inviscid.run(10)
        viscous.run(10)
        assert ke(viscous.state) <= ke(inviscid.state) + 1e-12


class TestDiscreteSymmetry:
    def test_mirror_symmetry_preserved(self):
        """A state symmetric under x-reflection (with u -> -u) stays so
        under the alternated L1/L2 pairs (two-step symmetry)."""
        grid = Grid(nx=16, nr=8, length_x=1.0, length_r=1.0)
        x = grid.xmesh()
        lam = grid.nx * grid.dx
        rho = 1.0 + 0.01 * np.cos(2 * np.pi * x / lam)
        state = FlowState.from_primitive(grid, rho, 0.0, 0.0, 1 / 1.4)
        solver = EulerSolver(state, _planar_config())
        solver.config.dt = 1e-3
        solver.run(2)  # one full L1/L2 pair
        q = state.q
        # Reflection: x_i -> x_{n-i} about the cosine's symmetry point.
        rho_r = q[0][::-1, :]
        np.testing.assert_allclose(
            np.roll(rho_r, 1, axis=0), q[0], atol=1e-12
        )
