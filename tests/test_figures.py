"""Figure generators: structure and headline shapes."""

import pytest

from repro.analysis.figures import (
    FigureResult,
    fig02_versions,
    fig03_fig04_lace,
    fig09_fig10_platforms,
    fig11_fig12_libraries,
    fig13_load_balance,
)
from repro.simulate.workload import EULER, NAVIER_STOKES


class TestFigure2:
    @pytest.fixture(scope="class")
    def fig(self):
        return fig02_versions()

    def test_endpoints_match_paper(self, fig):
        """V1 ~ 15,600 s and V5 ~ 9,060 s for NS on the 560 (Figure 2)."""
        ns = fig.series["Navier-Stokes"]
        assert ns[0] == pytest.approx(15_600, rel=0.06)
        assert ns[4] == pytest.approx(9_062, rel=0.01)

    def test_euler_about_half(self, fig):
        ns, eu = fig.series["Navier-Stokes"], fig.series["Euler"]
        for a, b in zip(ns, eu):
            assert b == pytest.approx(0.53 * a, rel=0.02)

    def test_monotone_v1_to_v5(self, fig):
        ns = fig.series["Navier-Stokes"][:5]
        assert all(b < a for a, b in zip(ns, ns[1:]))

    def test_render(self, fig):
        out = fig.render()
        assert "Figure 2" in out
        assert "MFLOPS" in out


class TestScalingFigures:
    def test_fig03_structure(self):
        fig = fig03_fig04_lace(NAVIER_STOKES, procs=(2, 8))
        assert set(fig.series) == {"ALLNODE-F", "ALLNODE-S", "Ethernet"}
        assert fig.figure_id == "Figure 3"
        assert len(fig.series["ALLNODE-F"]) == 2

    def test_fig04_is_euler(self):
        fig = fig03_fig04_lace(EULER, procs=(2,))
        assert fig.figure_id == "Figure 4"
        assert "Euler" in fig.title

    def test_fig09_platform_set(self):
        fig = fig09_fig10_platforms(NAVIER_STOKES, procs=(2, 8))
        assert "Cray Y-MP" in fig.series
        assert "Cray T3D" in fig.series
        assert "IBM SP (MPL)" in fig.series

    def test_fig11_budget_split(self):
        fig = fig11_fig12_libraries(NAVIER_STOKES, procs=(4, 16))
        assert set(fig.series) == {
            "busy (MPL)", "busy (PVMe)", "comm (MPL)", "comm (PVMe)"
        }
        # PVMe busy strictly above MPL busy at every p.
        for a, b in zip(fig.series["busy (PVMe)"], fig.series["busy (MPL)"]):
            assert a > b


class TestFigure13:
    def test_per_rank_bars(self):
        fig = fig13_load_balance(nprocs=8)
        bars = fig.series["busy time"]
        assert len(bars) == 8
        spread = (max(bars) - min(bars)) / (sum(bars) / len(bars))
        assert spread < 0.05
        assert not fig.loglog

    def test_render_smoke(self):
        out = fig13_load_balance(nprocs=8).render()
        assert "Figure 13" in out


class TestCsvExport:
    def test_round_trip(self, tmp_path):
        import csv

        fig = fig03_fig04_lace(NAVIER_STOKES, procs=(2, 8))
        path = tmp_path / "fig03.csv"
        fig.to_csv(str(path))
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["Number of Processors"] + list(fig.series)
        assert float(rows[1][0]) == 2
        assert float(rows[1][1]) == pytest.approx(fig.series["ALLNODE-F"][0])
        assert len(rows) == 3


class TestComponentsFigures:
    def test_fig05_series_structure(self):
        from repro.analysis.figures import fig05_fig06_components

        fig = fig05_fig06_components(NAVIER_STOKES, procs=(2, 8))
        assert fig.figure_id == "Figure 5"
        assert "LACE/590 busy" in fig.series
        assert "Ethernet comm" in fig.series
        # Busy falls with p; Ethernet comm rises.
        busy = fig.series["LACE/560 busy"]
        assert busy[1] < busy[0]
        eth = fig.series["Ethernet comm"]
        assert eth[1] > eth[0]

    def test_fig07_has_six_curves(self):
        from repro.analysis.figures import fig07_fig08_comm_versions

        fig = fig07_fig08_comm_versions(EULER, procs=(4,))
        assert fig.figure_id == "Figure 8"
        assert len(fig.series) == 6
        assert "V6 Ethernet" in fig.series and "V7 ALLNODE-S" in fig.series
