"""Perfect-gas EOS relations and round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.physics import eos

GAMMA = constants.GAMMA

positive = st.floats(0.05, 50.0, allow_nan=False, allow_infinity=False)
velocity = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)


class TestReferenceState:
    """The jet nondimensionalization: centerline rho = T = c = 1."""

    def test_centerline_pressure(self):
        # p = rho T / gamma with rho = T = 1.
        p = 1.0 / GAMMA
        assert eos.temperature(1.0, p) == pytest.approx(1.0)
        assert eos.sound_speed(1.0, p) == pytest.approx(1.0)

    def test_sound_speed_is_sqrt_temperature(self):
        rho, p = 2.0, 0.9
        T = eos.temperature(rho, p)
        assert eos.sound_speed(rho, p) == pytest.approx(np.sqrt(T))


class TestRoundTrips:
    @given(rho=positive, u=velocity, v=velocity, p=positive)
    @settings(max_examples=200)
    def test_pressure_energy_round_trip(self, rho, u, v, p):
        E = eos.total_energy(rho, u, v, p)
        p_back = eos.pressure(rho, rho * u, rho * v, E)
        assert p_back == pytest.approx(p, rel=1e-9, abs=1e-12)

    @given(rho=positive, p=positive)
    @settings(max_examples=100)
    def test_internal_energy_consistency(self, rho, p):
        e = eos.internal_energy(rho, p)
        # E with zero velocity = rho * e.
        E = eos.total_energy(rho, 0.0, 0.0, p)
        assert E == pytest.approx(rho * e, rel=1e-12)

    @given(rho=positive, u=velocity, v=velocity, p=positive)
    @settings(max_examples=100)
    def test_enthalpy_definition(self, rho, u, v, p):
        E = eos.total_energy(rho, u, v, p)
        H = eos.enthalpy(rho, E, p)
        # H = e + p/rho + kinetic
        expected = (
            eos.internal_energy(rho, p) + p / rho + 0.5 * (u * u + v * v)
        )
        assert H == pytest.approx(expected, rel=1e-9, abs=1e-12)


class TestVectorized:
    def test_array_inputs(self, rng=np.random.default_rng(1)):
        rho = 0.5 + rng.random((4, 5))
        u = rng.standard_normal((4, 5))
        v = rng.standard_normal((4, 5))
        p = 0.5 + rng.random((4, 5))
        E = eos.total_energy(rho, u, v, p)
        assert E.shape == (4, 5)
        assert np.allclose(eos.pressure(rho, rho * u, rho * v, E), p)


class TestViscosity:
    def test_reference_value(self):
        # mu_ref = 2 M / Re with the paper's numbers.
        mu = eos.viscosity()
        assert mu == pytest.approx(2 * 1.5 / 1.2e6)

    def test_constant_by_default(self):
        T = np.array([0.5, 1.0, 2.0])
        assert np.isscalar(eos.viscosity(T)) or eos.viscosity(T).ndim == 0

    def test_power_law(self):
        T = np.array([1.0, 4.0])
        mu = eos.viscosity(T, exponent=0.5)
        assert mu[1] == pytest.approx(2.0 * mu[0])

    def test_conductivity_relation(self):
        mu = 1e-5
        k = eos.conductivity(mu)
        assert k == pytest.approx(mu / ((GAMMA - 1) * constants.PRANDTL))
