"""Streaming per-step telemetry and the straggler/imbalance detector.

While a run executes, each rank publishes one compact record per solver
step — step number, simulated time, dt, wall ms, comm split and byte
deltas — through the process-global *step stream*.  The default stream is
a :class:`NullStepStream` (``enabled = False``), so the solver hot path
pays one global read and a branch when streaming is off, mirroring the
null-tracer / null-metrics pattern whose budget
``benchmarks/bench_solver_kernels.py`` enforces.

Publishers:

* :class:`BufferStepStream` — thread-safe bounded ring for in-process
  consumers (tests, the facade's ``stream=True``).
* :class:`QueueStepStream` — fans records into a bounded
  ``multiprocessing.Queue`` with drop-on-full semantics (the hot path
  never blocks on a slow consumer); the run service hands one of these to
  each worker so per-rank records (the queue is inherited through fork by
  the rank processes) flow straight to the service parent, which serves
  them to ``repro tail`` / ``repro top``.

Records follow the versioned ``repro.stream/1`` schema built by
:func:`step_record`.

:class:`StragglerDetector` consumes the stream online and
:func:`imbalance_verdict` analyzes a finished run's per-rank rows; both
flag load imbalance (max/mean step time) and comm-bound ranks
(communication share of step time), the "why was this slow" signal the
paper's comp:comm tables answer by hand.
"""

from __future__ import annotations

import queue as _queue
import threading
from collections import deque
from contextlib import contextmanager

#: Version tag carried by every streamed step record.
STREAM_SCHEMA = "repro.stream/1"


def step_record(
    *,
    rank: int,
    step: int,
    t: float,
    dt: float,
    ms: float,
    **extra,
) -> dict:
    """One ``repro.stream/1`` record.  ``extra`` carries optional fields
    (``comm_ms``, ``sent_bytes``, ``retries``, ...)."""
    rec = {
        "schema": STREAM_SCHEMA,
        "rank": rank,
        "step": step,
        "t": t,
        "dt": dt,
        "ms": ms,
    }
    if extra:
        rec.update(extra)
    return rec


class NullStepStream:
    """Inert stream: the zero-overhead global default."""

    enabled = False

    __slots__ = ()

    def publish(self, record: dict) -> None:
        return None


class BufferStepStream:
    """Thread-safe bounded ring of step records (in-process consumers).

    ``publish`` appends under a lock; when the ring is full the oldest
    record is evicted (``dropped`` counts evictions).  Virtual-cluster
    ranks are threads sharing one instance, so the lock is required.
    """

    enabled = True

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.published = 0
        self.dropped = 0

    def publish(self, record: dict) -> None:
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(record)
            self.published += 1

    def records(self) -> list[dict]:
        """A snapshot of the buffered records, oldest first."""
        with self._lock:
            return list(self._ring)


class QueueStepStream:
    """Publisher over a bounded multiprocessing (or stdlib) queue.

    ``put_nowait`` only — a full queue drops the record rather than
    stalling the solver step.  ``tags`` (e.g. ``job=<id>``) are merged
    into every record so a shared fan-in queue can demultiplex.
    """

    enabled = True

    def __init__(self, channel, **tags) -> None:
        self._channel = channel
        self._tags = tags
        self.published = 0
        self.dropped = 0

    def publish(self, record: dict) -> None:
        if self._tags:
            record = {**record, **self._tags}
        try:
            self._channel.put_nowait(record)
        except (_queue.Full, ValueError, OSError):
            # Full queue or a channel torn down mid-run: drop, never block.
            self.dropped += 1
        else:
            self.published += 1


#: Process-wide active step stream; hot paths read it via :func:`get_stream`.
_NULL = NullStepStream()
_active: BufferStepStream | QueueStepStream | NullStepStream = _NULL


def get_stream():
    """The active step stream (a :class:`NullStepStream` by default)."""
    return _active


def set_stream(stream):
    """Install ``stream`` globally (``None`` restores the null stream)."""
    global _active
    _active = stream if stream is not None else _NULL
    return _active


@contextmanager
def use_stream(stream):
    """Scoped :func:`set_stream`: restores the previous stream on exit."""
    global _active
    previous = _active
    _active = stream if stream is not None else _NULL
    try:
        yield _active
    finally:
        _active = previous


# -- imbalance analysis -------------------------------------------------------

#: A rank whose mean step time exceeds the cross-rank mean by this factor
#: is flagged as a straggler.
IMBALANCE_RATIO = 1.5
#: A rank spending at least this share of its step inside communication is
#: flagged as comm-bound.
COMM_BOUND_SHARE = 0.5


def _verdict_doc(
    per_rank_ms: dict[int, float],
    comm_share: dict[int, float],
    *,
    ratio_threshold: float = IMBALANCE_RATIO,
    comm_threshold: float = COMM_BOUND_SHARE,
) -> dict:
    """Build the balance verdict from per-rank mean step ms + comm share."""
    ranks = sorted(per_rank_ms)
    means = [per_rank_ms[r] for r in ranks]
    mean = sum(means) / len(means)
    slowest = max(ranks, key=lambda r: per_rank_ms[r])
    ratio = (per_rank_ms[slowest] / mean) if mean > 0 else 1.0
    comm_bound = [
        r for r in ranks if comm_share.get(r, 0.0) >= comm_threshold
    ]
    flags = []
    if ratio > ratio_threshold:
        flags.append("imbalanced")
    if comm_bound:
        flags.append("comm-bound")
    return {
        "schema": "repro.balance/1",
        "ranks": len(ranks),
        "max_mean_step_ratio": round(ratio, 4),
        "slowest_rank": slowest,
        "comm_bound_ranks": comm_bound,
        "comm_share": {str(r): round(comm_share.get(r, 0.0), 4) for r in ranks},
        "verdict": "+".join(flags) if flags else "balanced",
    }


def imbalance_verdict(
    per_rank: list[dict],
    *,
    ratio_threshold: float = IMBALANCE_RATIO,
    comm_threshold: float = COMM_BOUND_SHARE,
) -> dict | None:
    """Post-run balance verdict from :class:`PerfReport` per-rank rows.

    Each row carries ``rank`` plus (real runs) ``step_seconds`` /
    ``comm_seconds`` or (simulated runs) ``comp_seconds`` +
    ``comm_seconds``; rows without timing signal are ignored.  Returns
    ``None`` for fewer than two usable ranks.
    """
    per_rank_ms: dict[int, float] = {}
    comm_share: dict[int, float] = {}
    for row in per_rank:
        rank = row.get("rank")
        if rank is None:
            continue
        comm = float(row.get("comm_seconds") or 0.0)
        step = row.get("step_seconds")
        if step is None:
            comp = row.get("comp_seconds")
            if comp is None:
                continue
            step = float(comp) + comm
        step = float(step)
        if step <= 0.0:
            continue
        per_rank_ms[rank] = 1e3 * step
        comm_share[rank] = comm / step
    if len(per_rank_ms) < 2:
        return None
    return _verdict_doc(
        per_rank_ms,
        comm_share,
        ratio_threshold=ratio_threshold,
        comm_threshold=comm_threshold,
    )


class StragglerDetector:
    """Online imbalance analyzer over a live per-rank step stream.

    Feed it records via :meth:`observe` (``repro tail`` order is fine —
    ranks may interleave arbitrarily); :meth:`verdict` reports over a
    sliding window of the last ``window`` steps per rank.
    """

    def __init__(
        self,
        window: int = 64,
        *,
        ratio_threshold: float = IMBALANCE_RATIO,
        comm_threshold: float = COMM_BOUND_SHARE,
    ) -> None:
        self.window = window
        self.ratio_threshold = ratio_threshold
        self.comm_threshold = comm_threshold
        self._ms: dict[int, deque] = {}
        self._comm: dict[int, deque] = {}

    def observe(self, record: dict) -> None:
        rank = record.get("rank", 0)
        ms = record.get("ms")
        if ms is None:
            return
        self._ms.setdefault(rank, deque(maxlen=self.window)).append(float(ms))
        self._comm.setdefault(rank, deque(maxlen=self.window)).append(
            float(record.get("comm_ms", 0.0))
        )

    def verdict(self) -> dict | None:
        """Current balance verdict (``None`` until >= 2 ranks reported)."""
        usable = {r: d for r, d in self._ms.items() if d}
        if len(usable) < 2:
            return None
        per_rank_ms = {r: sum(d) / len(d) for r, d in usable.items()}
        comm_share = {}
        for r, d in usable.items():
            comm = self._comm.get(r)
            total = sum(d)
            comm_share[r] = (sum(comm) / total) if comm and total > 0 else 0.0
        return _verdict_doc(
            per_rank_ms,
            comm_share,
            ratio_threshold=self.ratio_threshold,
            comm_threshold=self.comm_threshold,
        )
