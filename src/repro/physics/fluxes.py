"""Inviscid fluxes and the axisymmetric source term.

The governing equations in the paper's ``r``-weighted conservative form are

.. math::

    (r q)_t + (r F)_x + (r G)_r = S,

with

.. math::

    q = \\begin{pmatrix} \\rho \\\\ \\rho u \\\\ \\rho v \\\\ E \\end{pmatrix},
    \\quad
    F = \\begin{pmatrix} \\rho u \\\\ \\rho u^2 + p - \\tau_{xx} \\\\
        \\rho u v - \\tau_{xr} \\\\
        \\rho u H - u\\tau_{xx} - v\\tau_{xr} + q_x \\end{pmatrix},
    \\quad
    G = \\begin{pmatrix} \\rho v \\\\ \\rho u v - \\tau_{xr} \\\\
        \\rho v^2 + p - \\tau_{rr} \\\\
        \\rho v H - u\\tau_{xr} - v\\tau_{rr} + q_r \\end{pmatrix},

and the geometric source ``S = (0, 0, p - tau_theta_theta, 0)`` acting on the
radial momentum (it appears because ``d(r p)/dr = r dp/dr + p``).  This module
provides the *inviscid* parts; :mod:`repro.physics.viscous` supplies the
stress/heat-flux contributions.  Dropping the viscous terms recovers the
Euler equations exactly as the paper describes.
"""

from __future__ import annotations

import numpy as np

from .. import constants


def inviscid_fluxes(q: np.ndarray, gamma: float = constants.GAMMA):
    """Inviscid axial and radial flux vectors for a conservative array.

    Parameters
    ----------
    q:
        Conservative array ``(4, ...)`` ordered ``(rho, rho u, rho v, E)``.

    Returns
    -------
    (F, G, p):
        Flux arrays with the same shape as ``q`` plus the pressure field
        (returned because every caller needs it again for the source term
        and boundary conditions — recomputing it would double the division
        count the paper's Version 4 works so hard to remove).
    """
    rho, rho_u, rho_v, E = q[0], q[1], q[2], q[3]
    inv_rho = 1.0 / rho  # single division, reused (paper Version 4 idiom)
    u = rho_u * inv_rho
    v = rho_v * inv_rho
    p = (gamma - 1.0) * (E - 0.5 * (rho_u * u + rho_v * v))
    Ep = E + p

    F = np.empty_like(q)
    F[0] = rho_u
    F[1] = rho_u * u + p
    F[2] = rho_u * v
    F[3] = u * Ep

    G = np.empty_like(q)
    G[0] = rho_v
    G[1] = rho_v * u
    G[2] = rho_v * v + p
    G[3] = v * Ep
    return F, G, p


def axisymmetric_source(
    q: np.ndarray,
    p: np.ndarray,
    tau_tt: np.ndarray | float = 0.0,
) -> np.ndarray:
    """Geometric source ``S = (0, 0, p - tau_theta_theta, 0)``.

    ``tau_tt`` is the azimuthal normal stress computed by
    :func:`repro.physics.viscous.stress_tensor`; it is zero for Euler.
    """
    S = np.zeros_like(q)
    S[2] = p - tau_tt
    return S
