"""Communicator interface and per-rank communication accounting.

The interface is deliberately PVM-flavoured (the paper's primary library):
sends are *buffered* — they deposit the message and return immediately —
and receives block until a matching ``(source, tag)`` message arrives.
This matches how the paper's code communicates (group data into long
vectors, send, continue) and makes the neighbour-exchange patterns
deadlock-free by construction.

Every send/receive is recorded in :class:`CommStats`; the distributed
solver's statistics are the *measured* source for the paper's Table 1
(communication startups and volume per processor).
"""

from __future__ import annotations

import abc
import time as _time
from dataclasses import dataclass

import numpy as np


@dataclass
class MessageRecord:
    """One communication event, for tracing and workload derivation."""

    kind: str  # "send" or "recv"
    peer: int
    tag: str
    nbytes: int
    seconds: float = 0.0
    """Wall seconds spent inside the library call (0 when not timed)."""


@dataclass
class CommStats:
    """Per-rank message counts, byte volumes, and library time.

    ``startups`` counts each send *and* each receive as one startup, the
    convention that best matches the magnitude of the paper's Table 1
    (sends alone undercount the library's per-message overheads, which is
    what the startup figure is meant to capture).

    The time dimension (``send_seconds`` / ``recv_seconds``) accumulates
    wall time spent inside the communication calls — the measured
    counterpart of the paper's communication-startup (send side, buffered
    deposit) and data-transfer/wait (receive side, blocking) components.
    """

    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    send_seconds: float = 0.0
    recv_seconds: float = 0.0
    max_message_bytes: int = 0
    """Largest single message this rank sent (grouping diagnostics: V5's
    grouped flux pairs double this relative to V7's split columns)."""
    trace: list[MessageRecord] | None = None

    @property
    def startups(self) -> int:
        return self.sends + self.recvs

    @property
    def volume_bytes(self) -> int:
        """Per-processor communication volume (bytes sent), Table 1 style."""
        return self.bytes_sent

    @property
    def comm_seconds(self) -> float:
        """Total wall time inside send + receive calls."""
        return self.send_seconds + self.recv_seconds

    def record_send(
        self, peer: int, tag: str, nbytes: int, seconds: float = 0.0
    ) -> None:
        self.sends += 1
        self.bytes_sent += nbytes
        self.send_seconds += seconds
        if nbytes > self.max_message_bytes:
            self.max_message_bytes = nbytes
        if self.trace is not None:
            self.trace.append(MessageRecord("send", peer, tag, nbytes, seconds))

    def record_recv(
        self, peer: int, tag: str, nbytes: int, seconds: float = 0.0
    ) -> None:
        self.recvs += 1
        self.bytes_received += nbytes
        self.recv_seconds += seconds
        if self.trace is not None:
            self.trace.append(MessageRecord("recv", peer, tag, nbytes, seconds))

    def merged_with(self, other: "CommStats") -> "CommStats":
        return CommStats(
            sends=self.sends + other.sends,
            recvs=self.recvs + other.recvs,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            bytes_received=self.bytes_received + other.bytes_received,
            send_seconds=self.send_seconds + other.send_seconds,
            recv_seconds=self.recv_seconds + other.recv_seconds,
            max_message_bytes=max(
                self.max_message_bytes, other.max_message_bytes
            ),
        )

    def ingest_into(self, metrics, rank: int) -> None:
        """Record this rank's totals as ``comm.*`` counters in a
        :class:`~repro.obs.metrics.MetricsRegistry` — the deterministic
        post-run source the performance report uses.  (Per-*call* time
        distributions are recorded live during the run under
        ``comm.send_call_seconds`` / ``comm.recv_call_seconds``; the
        totals here come from :class:`CommStats` so they are exact even
        when no registry was installed while the run executed.)"""
        metrics.count("comm.sends", float(self.sends), rank=rank)
        metrics.count("comm.recvs", float(self.recvs), rank=rank)
        metrics.count("comm.bytes_sent", float(self.bytes_sent), rank=rank)
        metrics.count(
            "comm.bytes_received", float(self.bytes_received), rank=rank
        )
        metrics.count("comm.send_seconds", self.send_seconds, rank=rank)
        metrics.count("comm.recv_seconds", self.recv_seconds, rank=rank)
        metrics.gauge(
            "comm.max_message_bytes", float(self.max_message_bytes), rank=rank
        )


class Request:
    """Handle for a non-blocking operation (PVM/MPL ``irecv`` style).

    ``test()`` polls without blocking; ``wait()`` blocks until completion
    and returns the payload (receives) or ``None`` (sends).
    """

    def test(self) -> bool:  # pragma: no cover - interface default
        return True

    def wait(self):  # pragma: no cover - interface default
        return None


class CompletedRequest(Request):
    """A request that completed immediately (buffered sends)."""

    def __init__(self, value=None) -> None:
        self._value = value

    def test(self) -> bool:
        return True

    def wait(self):
        return self._value


class OwnedView:
    """Copy-semantics receive view: an owned, read-only payload.

    Duck-types :class:`~repro.msglib.process.SlotView` (``.array``,
    ``.release()``, context manager, ``zero_copy``) so exchange code can
    hold any communicator's view across an interior compute without
    substrate branches.  The payload is owned by this view — releasing it
    frees nothing, but the access protocol (no reads after release,
    exactly one release) is enforced identically to the zero-copy case so
    lifetime bugs surface on every substrate, not just the process one.
    """

    __slots__ = ("_array", "_released")

    #: Owned views never alias transport memory.
    zero_copy = False

    def __init__(self, array: np.ndarray) -> None:
        array.setflags(write=False)
        self._array = array
        self._released = False

    @property
    def array(self) -> np.ndarray:
        if self._released:
            raise RuntimeError("OwnedView.array accessed after release()")
        return self._array

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        if self._released:
            raise RuntimeError(
                "OwnedView.release() called twice (view already returned)"
            )
        self._released = True

    def __enter__(self) -> "OwnedView":
        return self

    def __exit__(self, *exc) -> None:
        if not self._released:
            self.release()


class Communicator(abc.ABC):
    """Abstract point-to-point + collective interface for SPMD programs."""

    rank: int
    size: int
    stats: CommStats

    # -- point to point ------------------------------------------------------
    @abc.abstractmethod
    def send(self, dest: int, tag: str, array: np.ndarray) -> None:
        """Buffered send: deposits a copy and returns immediately."""

    @abc.abstractmethod
    def recv(
        self, source: int, tag: str, timeout: float | None = None
    ) -> np.ndarray:
        """Blocking receive of the message matching ``(source, tag)``.

        ``timeout`` optionally bounds this call in seconds (overriding any
        backend default); on expiry the backend raises
        :class:`~repro.msglib.vchannel.DeadlockError` naming receiver,
        sender and tag so a mis-tagged send fails fast instead of hanging.
        """

    # -- non-blocking variants (paper Version 6's primitive) -------------------
    def isend(self, dest: int, tag: str, array: np.ndarray) -> Request:
        """Non-blocking send.  With buffered semantics this completes
        immediately (the paper's PVM behaves the same way)."""
        self.send(dest, tag, array)
        return CompletedRequest()

    def irecv(
        self, source: int, tag: str, timeout: float | None = None
    ) -> Request:
        """Non-blocking receive: returns a request to poll or wait on.

        ``timeout`` bounds the eventual ``wait()`` exactly like
        :meth:`recv`'s — a lazy irecv against a crashed peer fails fast
        instead of hanging for the backend default.  Default
        implementation blocks at ``wait()``; backends with a probing
        mailbox override for true progress polling.
        """
        comm = self

        class _LazyRecv(Request):
            def __init__(self) -> None:
                self._value = None
                self._done = False

            def test(self) -> bool:
                return self._done

            def wait(self):
                if not self._done:
                    self._value = comm.recv(source, tag, timeout=timeout)
                    self._done = True
                return self._value

        return _LazyRecv()

    def recv_view(
        self, source: int, tag: str, timeout: float | None = None
    ) -> OwnedView:
        """Blocking receive returning a view (copy semantics by default).

        Backends whose transport can lend message memory (the process
        substrate's shared-memory slots) override this with a zero-copy
        borrow; everywhere else the payload is simply an owned read-only
        array wrapped in the same view protocol, so exchange code never
        needs a substrate branch or ``hasattr`` guard.
        """
        return OwnedView(self.recv(source, tag, timeout=timeout))

    def irecv_view(
        self, source: int, tag: str, timeout: float | None = None
    ) -> Request:
        """Non-blocking receive whose ``wait()`` yields a view.

        The split-phase exchange posts these before the interior compute;
        ``wait()`` returns the same view type :meth:`recv_view` does.
        Default implementation wraps :meth:`irecv` and wraps the payload
        at completion; backends with zero-copy views override.
        """
        inner = self.irecv(source, tag, timeout=timeout)

        class _ViewRecv(Request):
            def __init__(self) -> None:
                self._view: OwnedView | None = None

            def test(self) -> bool:
                return self._view is not None or inner.test()

            def wait(self) -> OwnedView:
                if self._view is None:
                    self._view = OwnedView(inner.wait())
                return self._view

        return _ViewRecv()

    # -- collectives (generic implementations over send/recv) -----------------
    def _collective_tag(self, tag: str) -> str:
        """Wire tag for one collective call: the caller's tag plus this
        communicator's monotonic collective sequence number.

        Every rank enters the same collectives in the same order (SPMD),
        so the counters advance in lockstep and the suffix matches across
        ranks.  Without it, consecutive collectives called with the same
        tag (the defaults: ``"allreduce"``, ``"barrier"``, ``"gather"``)
        share wire tags, and on an at-least-once transport a duplicated
        or reordered message from collective *N* satisfies collective
        *N+1*'s receive, silently returning a stale value.
        """
        seq = getattr(self, "_collective_seq", 0)
        self._collective_seq = seq + 1
        return f"{tag}#{seq}"

    def allreduce_min(self, value: float, tag: str = "allreduce") -> float:
        """Global minimum via gather-to-root + broadcast."""
        if self.size == 1:
            return value
        from ..obs import get_flight, get_tracer

        wire = self._collective_tag(tag)
        fl = get_flight()
        if fl.enabled:
            fl.record("collective", rank=self.rank, tag=wire, op="allreduce_min")
        tr = get_tracer()
        with tr.span("comm.allreduce", cat="collective", rank=self.rank, tag=tag):
            t0 = _time.perf_counter() if tr.enabled else 0.0
            buf = np.array([value])
            if self.rank == 0:
                acc = float(value)
                for src in range(1, self.size):
                    acc = min(acc, float(self.recv(src, f"{wire}:up")[0]))
                out = np.array([acc])
                for dst in range(1, self.size):
                    self.send(dst, f"{wire}:down", out)
            else:
                self.send(0, f"{wire}:up", buf)
                acc = float(self.recv(0, f"{wire}:down")[0])
            if tr.enabled:
                tr.count(
                    "barrier_wait_seconds",
                    _time.perf_counter() - t0,
                    rank=self.rank,
                )
            return acc

    def barrier(self, tag: str = "barrier") -> None:
        """Synchronize all ranks."""
        self.allreduce_min(0.0, tag=tag)

    def gather_arrays(self, array: np.ndarray, tag: str = "gather"):
        """Gather per-rank arrays to rank 0; returns list there, None else.

        Every slot of the returned list is an independent copy — rank 0's
        own contribution included, so a caller that reuses its send buffer
        after the gather cannot corrupt the gathered state.
        """
        wire = self._collective_tag(tag)
        from ..obs import get_flight

        fl = get_flight()
        if fl.enabled:
            fl.record("collective", rank=self.rank, tag=wire, op="gather_arrays")
        if self.rank == 0:
            out = [np.ascontiguousarray(array).copy()]
            for src in range(1, self.size):
                out.append(self.recv(src, wire))
            return out
        self.send(0, wire, array)
        return None
