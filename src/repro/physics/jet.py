"""Jet mean inflow profile and time-periodic excitation (paper Section 3).

The mean inflow is the classic tanh shear-layer profile

.. math::

    g(r) = \\tfrac12 \\Big[ 1 + \\tanh\\Big( \\frac{1}{4\\theta}
            \\big( \\frac{1}{r} - r \\big) \\Big) \\Big],

(with lengths in jet radii and ``theta`` the momentum thickness), together
with the Crocco-Busemann temperature profile the paper quotes:

.. math::

    T(r) = T_\\infty + (T_c - T_\\infty) g
           + \\tfrac{\\gamma - 1}{2} M_c^2 (1 - g) g.

Radial velocity is zero at inflow and static pressure is uniform, so density
follows from the EOS.  The excitation adds
``eps * Re(qhat(r) * exp(-i omega t))`` to the inflow primitives, where
``qhat`` comes from a linear-stability eigenmode
(:mod:`repro.physics.linearized`) and ``omega = pi * St * M_jet`` is the
angular frequency of Strouhal number ``St`` based on jet diameter and
centerline velocity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import constants
from .linearized import Eigenmode, GaussianEigenmode


def shear_layer_shape(r: np.ndarray, theta: float) -> np.ndarray:
    """The tanh shape function ``g(r)``; 1 on the axis, 0 in the far field."""
    r = np.asarray(r, dtype=np.float64)
    return 0.5 * (1.0 + np.tanh((1.0 / r - r) / (4.0 * theta)))


@dataclass(frozen=True)
class JetProfile:
    """Mean inflow profile of the excited axisymmetric jet.

    Parameters
    ----------
    mach:
        Jet centerline Mach number (paper: 1.5).
    theta:
        Momentum thickness of the shear layer in jet radii.
    temperature_ratio:
        ``T_c / T_inf`` (paper: 2).
    coflow:
        Freestream axial velocity ``u_inf`` in sound-speed units
        (0 for a quiescent ambient).
    """

    mach: float = constants.JET_MACH
    theta: float = constants.MOMENTUM_THICKNESS
    temperature_ratio: float = constants.TEMPERATURE_RATIO
    coflow: float = 0.0
    gamma: float = constants.GAMMA

    @property
    def u_centerline(self) -> float:
        """Centerline axial velocity in sound-speed units (= Mach)."""
        return self.mach

    @property
    def t_infinity(self) -> float:
        """Freestream temperature ``T_inf = T_c / ratio`` with ``T_c = 1``."""
        return 1.0 / self.temperature_ratio

    @property
    def pressure(self) -> float:
        """Uniform inflow static pressure ``1/gamma``."""
        return 1.0 / self.gamma

    def velocity(self, r: np.ndarray) -> np.ndarray:
        """Mean axial velocity ``U(r)``."""
        g = shear_layer_shape(r, self.theta)
        return self.coflow + (self.u_centerline - self.coflow) * g

    def temperature(self, r: np.ndarray) -> np.ndarray:
        """Crocco-Busemann temperature ``T(r)``."""
        g = shear_layer_shape(r, self.theta)
        t_inf = self.t_infinity
        return (
            t_inf
            + (1.0 - t_inf) * g
            + 0.5 * (self.gamma - 1.0) * self.mach**2 * (1.0 - g) * g
        )

    def density(self, r: np.ndarray) -> np.ndarray:
        """Mean density from uniform pressure: ``rho = gamma p / T = 1/T``."""
        return self.gamma * self.pressure / self.temperature(r)

    def primitives(self, r: np.ndarray):
        """``(rho, u, v, p)`` mean profiles on the radial stations ``r``."""
        rho = self.density(r)
        u = self.velocity(r)
        v = np.zeros_like(u)
        p = np.full_like(u, self.pressure)
        return rho, u, v, p


@dataclass
class InflowExcitation:
    """Time-periodic eigenfunction forcing applied at the inflow plane.

    ``primitives(r, t)`` returns the instantaneous ``(rho, u, v, p)``:
    the mean profile plus ``eps * Re(qhat exp(-i omega t))``.

    The default eigenmode is the analytic Gaussian shear-layer bump
    (see :class:`repro.physics.linearized.GaussianEigenmode`); passing a
    mode from :func:`repro.physics.linearized.solve_temporal_mode` uses the
    discrete linear-stability eigenfunctions instead.
    """

    profile: JetProfile
    strouhal: float = constants.STROUHAL
    epsilon: float = constants.EXCITATION_LEVEL
    mode: Eigenmode | None = None
    _cache: dict = field(default_factory=dict, repr=False)

    @property
    def omega(self) -> float:
        """Angular frequency: ``omega = 2 pi f`` with ``f = St * U_c / D``.

        Diameter ``D = 2`` in jet radii, so ``omega = pi * St * M_jet``.
        """
        return np.pi * self.strouhal * self.profile.mach

    def _mode_on(self, r: np.ndarray) -> tuple[np.ndarray, ...]:
        key = (r.shape, float(r[0]), float(r[-1]))
        if key not in self._cache:
            mode = self.mode
            if mode is None:
                mode = GaussianEigenmode(theta=self.profile.theta)
            self._cache[key] = mode.evaluate(r)
        return self._cache[key]

    def primitives(self, r: np.ndarray, t: float):
        """Instantaneous inflow primitives ``(rho, u, v, p)`` at time ``t``."""
        rho0, u0, v0, p0 = self.profile.primitives(r)
        if self.epsilon == 0.0:
            return rho0, u0, v0, p0
        rho_hat, u_hat, v_hat, p_hat = self._mode_on(np.asarray(r))
        phase = np.exp(-1j * self.omega * t)
        eps = self.epsilon
        return (
            rho0 + eps * np.real(rho_hat * phase),
            u0 + eps * np.real(u_hat * phase),
            v0 + eps * np.real(v_hat * phase),
            p0 + eps * np.real(p_hat * phase),
        )
