"""The discrete-event engine: ordering, resources, events, determinism."""

import pytest

from repro.simulate.engine import (
    Acquire,
    Delay,
    Engine,
    Event,
    Release,
    Resource,
    Spawn,
    Trigger,
    Wait,
)


class TestDelays:
    def test_time_advances(self):
        eng = Engine()
        log = []

        def proc():
            yield Delay(1.5)
            log.append(eng.now)
            yield Delay(0.5)
            log.append(eng.now)

        eng.add_process(proc())
        assert eng.run() == pytest.approx(2.0)
        assert log == [pytest.approx(1.5), pytest.approx(2.0)]

    def test_interleaving_order(self):
        eng = Engine()
        log = []

        def proc(name, d):
            yield Delay(d)
            log.append(name)

        eng.add_process(proc("b", 2.0))
        eng.add_process(proc("a", 1.0))
        eng.run()
        assert log == ["a", "b"]

    def test_tie_break_is_fifo(self):
        eng = Engine()
        log = []

        def proc(name):
            yield Delay(1.0)
            log.append(name)

        for n in "abc":
            eng.add_process(proc(n))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        eng = Engine()

        def proc():
            yield Delay(-1.0)

        eng.add_process(proc())
        with pytest.raises(ValueError, match="negative delay"):
            eng.run()


class TestResources:
    def test_serializes_at_capacity_one(self):
        eng = Engine()
        res = Resource(1, "bus")
        spans = []

        def proc():
            yield Acquire(res)
            t0 = eng.now
            yield Delay(1.0)
            yield Release(res)
            spans.append((t0, eng.now))

        eng.add_process(proc())
        eng.add_process(proc())
        eng.run()
        # Second holder starts when the first releases.
        assert spans[0] == (pytest.approx(0.0), pytest.approx(1.0))
        assert spans[1] == (pytest.approx(1.0), pytest.approx(2.0))

    def test_capacity_two_runs_concurrently(self):
        eng = Engine()
        res = Resource(2)
        done = []

        def proc():
            yield Acquire(res)
            yield Delay(1.0)
            yield Release(res)
            done.append(eng.now)

        for _ in range(2):
            eng.add_process(proc())
        eng.run()
        assert done == [pytest.approx(1.0)] * 2

    def test_fifo_queueing(self):
        eng = Engine()
        res = Resource(1)
        order = []

        def proc(name, arrive):
            yield Delay(arrive)
            yield Acquire(res)
            order.append(name)
            yield Delay(1.0)
            yield Release(res)

        eng.add_process(proc("first", 0.0))
        eng.add_process(proc("second", 0.1))
        eng.add_process(proc("third", 0.2))
        eng.run()
        assert order == ["first", "second", "third"]

    def test_release_idle_raises(self):
        eng = Engine()
        res = Resource(1)

        def proc():
            yield Release(res)

        eng.add_process(proc())
        with pytest.raises(RuntimeError, match="idle resource"):
            eng.run()

    def test_utilization_accounting(self):
        eng = Engine()
        res = Resource(1)

        def proc():
            yield Acquire(res)
            yield Delay(2.0)
            yield Release(res)
            yield Delay(3.0)

        eng.add_process(proc())
        eng.run()
        assert res.busy_time == pytest.approx(2.0)


class TestEvents:
    def test_wait_then_trigger(self):
        eng = Engine()
        ev = Event("go")
        log = []

        def waiter():
            yield Wait(ev)
            log.append(("woke", eng.now))

        def trigger():
            yield Delay(2.0)
            yield Trigger(ev)

        eng.add_process(waiter())
        eng.add_process(trigger())
        eng.run()
        assert log == [("woke", pytest.approx(2.0))]
        assert ev.trigger_time == pytest.approx(2.0)

    def test_wait_on_triggered_event_continues(self):
        eng = Engine()
        ev = Event()
        log = []

        def trigger():
            yield Trigger(ev)

        def late_waiter():
            yield Delay(5.0)
            yield Wait(ev)
            log.append(eng.now)

        eng.add_process(trigger())
        eng.add_process(late_waiter())
        eng.run()
        assert log == [pytest.approx(5.0)]

    def test_broadcast_wakes_all(self):
        eng = Engine()
        ev = Event()
        woke = []

        def waiter(k):
            yield Wait(ev)
            woke.append(k)

        for k in range(3):
            eng.add_process(waiter(k))

        def trig():
            yield Delay(1.0)
            yield Trigger(ev)

        eng.add_process(trig())
        eng.run()
        assert sorted(woke) == [0, 1, 2]


class TestSpawnAndErrors:
    def test_spawn_child(self):
        eng = Engine()
        log = []

        def child():
            yield Delay(1.0)
            log.append("child")

        def parent():
            yield Spawn(child())
            yield Delay(0.5)
            log.append("parent")

        eng.add_process(parent())
        eng.run()
        assert log == ["parent", "child"]

    def test_stall_detection(self):
        eng = Engine()
        ev = Event()

        def stuck():
            yield Wait(ev)

        eng.add_process(stuck())
        with pytest.raises(RuntimeError, match="stalled"):
            eng.run()

    def test_unknown_command(self):
        eng = Engine()

        def bad():
            yield "nonsense"

        eng.add_process(bad())
        with pytest.raises(TypeError, match="unknown simulation command"):
            eng.run()

    def test_determinism(self):
        """Identical programs give identical end times and event counts."""

        def build():
            eng = Engine()
            res = Resource(1)
            for k in range(5):

                def proc(k=k):
                    yield Delay(0.1 * k)
                    yield Acquire(res)
                    yield Delay(0.37)
                    yield Release(res)

                eng.add_process(proc())
            return eng

        a, b = build(), build()
        assert a.run() == b.run()
        assert a.steps == b.steps


class TestEngineProperties:
    def test_random_programs_deterministic(self):
        """Any random (but fixed-seed) program replays identically."""
        import random

        from hypothesis import given, settings
        from hypothesis import strategies as st

        @given(seed=st.integers(0, 10_000))
        @settings(max_examples=25, deadline=None)
        def check(seed):
            def build():
                rng = random.Random(seed)
                eng = Engine()
                res = [Resource(rng.randint(1, 3)) for _ in range(3)]
                evs = [Event() for _ in range(3)]

                def proc(k):
                    r = res[k % 3]
                    yield Delay(0.01 * (k % 5))
                    yield Acquire(r)
                    yield Delay(0.1)
                    yield Release(r)
                    yield Trigger(evs[k % 3])
                    yield Wait(evs[(k + 1) % 3])

                for k in range(6):
                    eng.add_process(proc(k))
                return eng

            a, b = build(), build()
            assert a.run() == b.run()
            assert a.steps == b.steps

        check()

    def test_resource_conservation_under_random_load(self):
        """in_use returns to zero when all processes finish."""
        import random

        rng = random.Random(42)
        eng = Engine()
        res = Resource(2, "shared")

        def proc():
            yield Delay(rng.random())
            yield Acquire(res)
            yield Delay(rng.random())
            yield Release(res)

        for _ in range(20):
            eng.add_process(proc())
        eng.run()
        assert res.in_use == 0
        assert res.busy_time > 0
