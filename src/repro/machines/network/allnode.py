"""IBM ALLNODE switch (Omega-network variant, LACE).

Two generations in the paper: ALLNODE-F at 64 Mbps/link (lower half, with
the RS6000/590s) and the ALLNODE-S prototype at 32 Mbps/link (upper half,
RS6000/560s).  The switch "is capable of providing multiple contentionless
paths between the nodes of the cluster (a maximum of 8 paths can be
configured between source and destination processors)" — so for the
solver's neighbour traffic the links behave point-to-point, with a finite
pool of concurrently-routable paths through the multistage fabric.  The
paper observes speedup flattening "beyond 12 processors" on ALLNODE; the
``concurrent_paths`` pool (default 12) models the stage-conflict onset that
causes it.
"""

from __future__ import annotations

from .base import Network, per_node_links


class AllnodeNetwork(Network):
    """Multistage Omega switch with a concurrent-path pool."""

    def __init__(
        self,
        nnodes: int,
        link_bps: float,
        fast: bool = True,
        concurrent_paths: int = 12,
        latency: float = 80e-6,
    ) -> None:
        self.name = "ALLNODE-F" if fast else "ALLNODE-S"
        self.nnodes = nnodes
        self.link_bps = link_bps
        self.concurrent_paths = concurrent_paths
        #: Hardware path-setup latency (the big latency is PVM's, not the
        #: switch's).
        self.latency = latency

    @classmethod
    def fast(cls, nnodes: int) -> "AllnodeNetwork":
        """ALLNODE-F: 64 Mbps per link (paper Section 4.1)."""
        return cls(nnodes, link_bps=64e6, fast=True)

    @classmethod
    def slow(cls, nnodes: int) -> "AllnodeNetwork":
        """ALLNODE-S prototype: 32 Mbps per link (paper Section 4.1)."""
        return cls(nnodes, link_bps=32e6, fast=False)

    def link_ids(self, src: int, dst: int) -> list[str]:
        return sorted(per_node_links(src, dst) + ["paths"])

    def capacities(self) -> dict[str, int]:
        caps: dict[str, int] = {"paths": self.concurrent_paths}
        for n in range(self.nnodes):
            caps[f"in:{n}"] = 1
            caps[f"out:{n}"] = 1
        return caps

    def transfer_time(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.link_bps

    def saturation_bandwidth(self) -> float:
        return min(self.nnodes, self.concurrent_paths) * self.link_bps / 8.0
