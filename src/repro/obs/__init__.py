"""Observability: hierarchical tracing and per-rank metrics.

The paper's entire contribution is *measurement* — Section 6 decomposes
execution time into computation, communication-startup and data-transfer
components per platform.  This package provides the corresponding
instrumentation for the reproduction itself:

* :class:`Tracer` — hierarchical spans (``with tracer.span("solver.step")``)
  with per-rank attribution, instant events, and per-rank counters
  (messages, bytes, barrier/halo time).  Records are monotonically ordered
  by ``(t0, seq)`` where ``seq`` is a global monotone sequence number, so
  exports from deterministic clocks (the DES engine's) are byte-stable.
* :class:`NullTracer` — the zero-overhead default.  All hot seams fetch the
  active tracer via :func:`get_tracer`; with the null tracer every span is
  a shared no-op context manager, keeping the uninstrumented fast path
  within noise (asserted by ``benchmarks/bench_solver_kernels.py``).
* Exporters — JSON-lines (:func:`to_jsonl` / :func:`load_trace`) and Chrome
  ``trace_event`` format (:func:`chrome_trace_json`,
  :func:`write_chrome_trace`) whose files open directly in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.

Typical use through the facade::

    from repro.api import run
    res = run("jet", steps=50, nprocs=4, trace="jet.trace.json")
    # jet.trace.json now opens in Perfetto; res.trace holds the records.

Or standalone::

    from repro import obs
    tracer = obs.Tracer()
    with obs.use_tracer(tracer):
        with tracer.span("maccormack.predictor", rank=0):
            ...
    print(obs.to_jsonl(tracer.trace))
"""

from .tracer import (
    EventRecord,
    NullTracer,
    SpanRecord,
    Trace,
    TraceContext,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from .flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    FlightRing,
    NullFlightRecorder,
    get_flight,
    read_flight_jsonl,
    set_flight,
    use_flight,
    write_flight_jsonl,
)
from .stream import (
    STREAM_SCHEMA,
    BufferStepStream,
    NullStepStream,
    QueueStepStream,
    StragglerDetector,
    get_stream,
    imbalance_verdict,
    set_stream,
    step_record,
    use_stream,
)
from .export import (
    chrome_counter_events,
    chrome_trace_events,
    chrome_trace_json,
    load_trace,
    to_jsonl,
    trace_from_timelines,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    STEP_TIME_BUCKETS,
    get_metrics,
    merge,
    set_metrics,
    use_metrics,
)
from .report import (
    PerfReport,
    append_ledger,
    build_perf_report,
    read_ledger,
    render_ledger,
    render_report,
)

__all__ = [
    "EventRecord",
    "NullTracer",
    "SpanRecord",
    "Trace",
    "TraceContext",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "FlightRing",
    "NullFlightRecorder",
    "get_flight",
    "read_flight_jsonl",
    "set_flight",
    "use_flight",
    "write_flight_jsonl",
    "STREAM_SCHEMA",
    "BufferStepStream",
    "NullStepStream",
    "QueueStepStream",
    "StragglerDetector",
    "get_stream",
    "imbalance_verdict",
    "set_stream",
    "step_record",
    "use_stream",
    "chrome_counter_events",
    "chrome_trace_events",
    "chrome_trace_json",
    "load_trace",
    "to_jsonl",
    "trace_from_timelines",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "STEP_TIME_BUCKETS",
    "get_metrics",
    "merge",
    "set_metrics",
    "use_metrics",
    "PerfReport",
    "append_ledger",
    "build_perf_report",
    "read_ledger",
    "render_ledger",
    "render_report",
]
