"""The persistent result store: content-addressed by request fingerprint.

Layout under one root directory (default
``<data_dir>/service/`` — see :func:`repro.config.default_service_dir`)::

    index.jsonl            one JSON line per completed run (append-only)
    results/<fp>.pkl       pickled payload (RunResult, or experiment text)

The index follows the run-ledger idiom (``BENCH_runs.jsonl``): append-only
JSON lines, last line wins per fingerprint, rebuildable by rescanning.
Payload files are written atomically (temp + ``os.replace``) and named by
fingerprint, so concurrent workers computing the same fingerprint are
idempotent — the bytes they race to write are identical.

Pickle round-trips numpy arrays exactly, so a cached
:class:`~repro.api.RunResult` is **bitwise-identical** to the one the
original execution returned (the end-to-end service test asserts this).
"""

from __future__ import annotations

import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from ..config import default_service_dir

__all__ = ["STORE_SCHEMA", "ResultStore", "StoreEntry"]

#: Index line format tag; bump on incompatible shape changes.
STORE_SCHEMA = "repro.service/1"


@dataclass
class StoreEntry:
    """One completed run in the store (one ``index.jsonl`` line)."""

    fingerprint: str
    kind: str
    """``"run"`` (a RunRequest) or ``"experiment"``."""
    request: dict
    """The wire form of the request that produced this entry."""
    report: dict
    """Summary manifest: a :class:`~repro.obs.PerfReport` dict for runs,
    a small ``{id, chars, sha256}`` record for experiments."""
    payload: str
    """Payload file path, relative to the store root."""
    created: float = 0.0
    schema: str = STORE_SCHEMA
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "kind": self.kind,
            "request": self.request,
            "report": self.report,
            "payload": self.payload,
            "created": self.created,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "StoreEntry":
        return cls(
            schema=d.get("schema", STORE_SCHEMA),
            fingerprint=d["fingerprint"],
            kind=d.get("kind", "run"),
            request=d.get("request") or {},
            report=d.get("report") or {},
            payload=d["payload"],
            created=float(d.get("created", 0.0)),
            meta=d.get("meta") or {},
        )


class ResultStore:
    """Fingerprint-keyed persistent cache of run results.

    Single-writer index discipline: only the service parent process (or a
    standalone caller) appends index lines via :meth:`commit` / :meth:`put`;
    worker processes write payload files only (:meth:`write_payload` is
    safe from any process).
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else default_service_dir()
        self.index_path = self.root / "index.jsonl"
        self.results_dir = self.root / "results"
        self._entries: dict[str, StoreEntry] = {}
        self.refresh()

    # -- reading -------------------------------------------------------------

    def refresh(self) -> None:
        """Re-read the index from disk (last line wins per fingerprint)."""
        entries: dict[str, StoreEntry] = {}
        try:
            with open(self.index_path, encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, 1):
                    line = line.strip()
                    if not line:
                        continue
                    d = json.loads(line)
                    if d.get("schema") != STORE_SCHEMA:
                        raise ValueError(
                            f"{self.index_path}:{lineno}: unknown store "
                            f"schema {d.get('schema')!r} "
                            f"(expected {STORE_SCHEMA!r})"
                        )
                    entry = StoreEntry.from_dict(d)
                    entries[entry.fingerprint] = entry
        except FileNotFoundError:
            pass
        self._entries = entries

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> StoreEntry | None:
        return self._entries.get(fingerprint)

    def entries(self) -> Iterable[StoreEntry]:
        return list(self._entries.values())

    def load_result(self, fingerprint: str) -> Any:
        """Unpickle the stored payload (RunResult / experiment text)."""
        entry = self._entries.get(fingerprint)
        if entry is None:
            raise KeyError(f"fingerprint {fingerprint!r} not in store")
        with open(self.root / entry.payload, "rb") as fh:
            return pickle.load(fh)

    # -- writing -------------------------------------------------------------

    def payload_relpath(self, fingerprint: str) -> str:
        return str(Path("results") / f"{fingerprint}.pkl")

    def write_payload(self, fingerprint: str, payload: Any) -> str:
        """Atomically write the pickled payload; returns the relative path.

        Safe from worker processes: temp file + ``os.replace`` into the
        content-addressed name, so a concurrent identical write is a
        harmless overwrite with identical bytes.
        """
        rel = self.payload_relpath(fingerprint)
        final = self.root / rel
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = final.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, final)
        return rel

    def commit(
        self,
        fingerprint: str,
        *,
        kind: str,
        request: dict,
        report: dict,
        payload: str | None = None,
        meta: dict | None = None,
    ) -> StoreEntry:
        """Append one index line for an already-written payload."""
        entry = StoreEntry(
            fingerprint=fingerprint,
            kind=kind,
            request=request,
            report=report,
            payload=payload or self.payload_relpath(fingerprint),
            created=time.time(),
            meta=meta or {},
        )
        self.index_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.index_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        self._entries[fingerprint] = entry
        return entry

    def put(
        self,
        fingerprint: str,
        payload: Any,
        *,
        kind: str,
        request: dict,
        report: dict,
        meta: dict | None = None,
    ) -> StoreEntry:
        """Write payload + index line in one call (standalone use)."""
        rel = self.write_payload(fingerprint, payload)
        return self.commit(
            fingerprint,
            kind=kind,
            request=request,
            report=report,
            payload=rel,
            meta=meta,
        )
