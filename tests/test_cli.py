"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "table2" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "580" in capsys.readouterr().out

    def test_simulate_distributed(self, capsys):
        assert main(
            ["simulate", "--platform", "Cray T3D", "--procs", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "Cray T3D" in out and "exec=" in out

    def test_simulate_ymp(self, capsys):
        assert main(
            ["simulate", "--platform", "cray y-mp", "--procs", "4", "--euler"]
        ) == 0
        assert "Y-MP" in capsys.readouterr().out

    def test_jet(self, capsys):
        assert main(
            ["jet", "--nx", "40", "--nr", "20", "--steps", "10"]
        ) == 0
        out = capsys.readouterr().out
        assert "physical=True" in out
        assert "axial momentum" in out

    def test_sweep(self, capsys):
        assert main(
            ["sweep", "--platforms", "Cray T3D", "--procs", "2", "8"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "Cray T3D" in out

    def test_trace(self, capsys):
        assert main(
            ["trace", "--platform", "IBM SP", "--procs", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "rank  0" in out

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            main(["simulate", "--platform", "Connection Machine", "--procs", "4"])


class TestSweeps:
    def test_records_and_rendering(self):
        from repro.experiments.sweeps import sweep, sweep_table
        from repro.machines.platforms import CRAY_T3D, CRAY_YMP
        from repro.simulate.workload import NAVIER_STOKES

        recs = sweep([CRAY_T3D, CRAY_YMP], [NAVIER_STOKES], procs=(2, 8, 16))
        # Y-MP clamped to 8 CPUs: only two of its three grid points run.
        ymp = [r for r in recs if "Y-MP" in r.platform]
        assert [r.nprocs for r in ymp] == [2, 8]
        t3d = [r for r in recs if "T3D" in r.platform]
        assert t3d[0].speedup == pytest.approx(2.0)
        assert t3d[-1].speedup > 14
        out = sweep_table(recs)
        assert "Cray T3D" in out and "Cray Y-MP" in out
