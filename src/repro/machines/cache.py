"""Cache models: an exact simulator and an analytic sweep-miss estimator.

The paper's central single-processor finding is that *"most parts of the
application were limited by the poor performance of the memory hierarchy
involving the cache and the main memory"* and that the T3D's weakness is its
*"small, direct-mapped cache"*.  Two complementary models capture this:

* :class:`CacheSim` — an exact set-associative LRU / direct-mapped cache
  simulator over explicit address streams.  Used by the unit tests (against
  hand-computed miss sequences) and by the cache-design ablation benchmark.
* :func:`sweep_miss_rate` — a closed-form estimate of the per-access miss
  rate of the solver's array sweeps, the quantity the CPU timing model
  needs.  Its structure:

  - stride-1 sweeps miss once per cache line (``element_size / line``);
  - large-stride sweeps (the pre-loop-interchange code) miss at the
    ``BAD_STRIDE_MISS`` rate — below 1.0 because columns revisited within
    a sweep retain some lines and associativity absorbs part of the
    conflicts;
  - a capacity multiplier grows with ``working_set / cache_size`` (every
    full-array sweep of a working set far larger than the cache starts
    cold);
  - direct-mapped caches pay an extra conflict factor (power-of-two array
    leading dimensions collide — the T3D effect).
"""

from __future__ import annotations

from dataclasses import dataclass

BAD_STRIDE_MISS = 0.16
"""Per-access miss rate of large-stride sweeps (see module docstring).

Calibrated so the RS6000/560 model reproduces the paper's measured
Version-1 rate (9.3 MFLOPS) given its anchored Version-5 rate (16.0)."""

CAPACITY_MAX = 1.9
"""Saturated capacity-miss multiplier.

``cap(ws) = 1 + (CAPACITY_MAX - 1) * max(0, 1 - size/ws)``: no capacity
misses when the working set fits, saturating once it far exceeds the cache
(every sweep then starts cold — further growth changes nothing).  The
saturation matters: per-processor working sets shrink with the processor
count, but at the paper's scale they still dwarf every cache, so the
machines must not gain superlinear speedup from decomposition."""

#: Extra conflict-miss factor by associativity (direct-mapped worst).
CONFLICT_FACTOR = {1: 1.6, 2: 1.25, 4: 1.0, 8: 1.0}


@dataclass(frozen=True)
class CacheSpec:
    """Geometry and timing of one data cache."""

    size_bytes: int
    line_bytes: int
    associativity: int
    miss_penalty_cycles: float
    """Cycles to fill a line from memory (set by bus width and DRAM)."""

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ValueError("size must be a multiple of line * associativity")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)

    def conflict_factor(self) -> float:
        return CONFLICT_FACTOR.get(self.associativity, 1.0)


def sweep_miss_rate(
    spec: CacheSpec,
    stride1_fraction: float,
    working_set_bytes: float,
    element_bytes: int = 8,
    degradation: float = 1.0,
) -> float:
    """Estimated per-access miss rate of the solver's sweeps (see module
    docstring).  ``degradation`` is the version's temporal-locality factor
    (V6 > 1)."""
    line_miss = element_bytes / spec.line_bytes
    base = stride1_fraction * line_miss + (1.0 - stride1_fraction) * BAD_STRIDE_MISS
    ratio = spec.size_bytes / max(working_set_bytes, 1.0)
    capacity = 1.0 + (CAPACITY_MAX - 1.0) * max(0.0, 1.0 - ratio)
    rate = base * capacity * spec.conflict_factor() * degradation
    return min(rate, 1.0)


class CacheSim:
    """Exact set-associative LRU cache simulator (direct-mapped when
    ``associativity == 1``).

    Feed it byte addresses with :meth:`access`; it returns ``True`` on hit.
    Intended for verification and ablation studies on synthetic streams,
    not for full solver runs.
    """

    def __init__(self, spec: CacheSpec) -> None:
        self.spec = spec
        self.hits = 0
        self.misses = 0
        # Per-set list of line tags in LRU order (front = most recent).
        self._sets: list[list[int]] = [[] for _ in range(spec.n_sets)]

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit, False on miss."""
        if address < 0:
            raise ValueError("addresses must be non-negative")
        line = address // self.spec.line_bytes
        idx = line % self.spec.n_sets
        ways = self._sets[idx]
        if line in ways:
            ways.remove(line)
            ways.insert(0, line)
            self.hits += 1
            return True
        ways.insert(0, line)
        if len(ways) > self.spec.associativity:
            ways.pop()
        self.misses += 1
        return False

    def access_array(self, base: int, count: int, stride_bytes: int) -> int:
        """Sweep ``count`` elements from ``base`` with ``stride_bytes``;
        returns the number of misses incurred."""
        before = self.misses
        for k in range(count):
            self.access(base + k * stride_bytes)
        return self.misses - before

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate all lines (counters preserved)."""
        self._sets = [[] for _ in range(self.spec.n_sets)]
