"""Named platform configurations (paper Section 4).

Every number here is motivated by a specific sentence of the paper (quoted
in the comments) or by the standard published specification of the 1995
hardware.  The sustained-MFLOPS anchors follow the calibration policy of
DESIGN.md Section 6: the paper gives the RS6000/560's measured 16.0 MFLOPS
(Version 5) directly; the other anchors are derived from the paper's
relative statements and hold the mechanistic cache model's ratios around
them.  No figure-level result is encoded here — the discrete-event
simulation produces those.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from ..msglib.libmodel import CRAY_PVM, MPL, PVM, PVME, LibraryModel
from .cache import CacheSpec
from .cpu import ScalarCpuModel
from .network import (
    AllnodeNetwork,
    AtmNetwork,
    CrossbarNetwork,
    EthernetNetwork,
    FddiNetwork,
    Network,
    SPSwitchNetwork,
    Torus3DNetwork,
)
from .vector import VectorCpuModel

# ---------------------------------------------------------------------------
# CPUs
# ---------------------------------------------------------------------------

CPU_RS6000_560 = ScalarCpuModel(
    # "RS6000/Model 560 CPUs (the CPU has a 50 MHz clock, 256KB data- and
    # 32KB instruction caches)" — the paper's Section 4.1 sentence swaps the
    # 560/590 cache sizes relative to its own Section 7.2 ("64KB on
    # LACE/560 and 256KB on LACE/590"); we follow Section 7.2, which
    # matches the published POWER specs.
    name="RS6000/560",
    clock_hz=50e6,
    cache=CacheSpec(
        size_bytes=64 * 1024, line_bytes=128, associativity=4, miss_penalty_cycles=12.0
    ),
    # The paper's peak-rating arithmetic ("2.3X and 3X the rating of the
    # 590 and 560" for the 150 MFLOPS T3D) rates these CPUs at clock x 1.
    flops_per_cycle=1.0,
    v5_target_mflops=16.0,  # paper Section 6: "9.3 MFLOPS to 16.0 MFLOPS"
)

CPU_RS6000_590 = ScalarCpuModel(
    # "the superior performance of the 590 model (33% faster clock, data
    # and instruction caches which are 4 times bigger, and memory bus which
    # is 4 times wider ...)" — Section 7.1.
    name="RS6000/590",
    clock_hz=66.5e6,
    cache=CacheSpec(
        size_bytes=256 * 1024,
        line_bytes=256,
        associativity=4,
        miss_penalty_cycles=8.0,  # 4x wider memory bus -> lower fill cost
    ),
    flops_per_cycle=1.0,
    # Anchor chosen so the node ratio over the 560 (~1.7x) combined with
    # the 2x faster ALLNODE-F link reproduces "ALLNODE-F is about 70%-80%
    # faster than ALLNODE-S" (Section 7.1).
    v5_target_mflops=27.5,
)

CPU_RS6000_370 = ScalarCpuModel(
    # "the CPU at each node is a RS6K/370 - the CPU has a 50 MHz clock,
    # 32KB data and instruction caches"; Section 7.2 calls the SP CPU
    # "intermediate in speed (62.5 MHz clock) between the 560 (50 MHz) and
    # the 590 (66.6 MHz)" — we adopt the 62.5 MHz figure used in the
    # comparative argument.
    name="RS6K/370",
    clock_hz=62.5e6,
    cache=CacheSpec(
        size_bytes=32 * 1024, line_bytes=128, associativity=4, miss_penalty_cycles=12.0
    ),
    flops_per_cycle=1.0,
    # "Another contributor to the poor performance of the SP is
    # attributable to the data cache which is just 32KB" — anchored below
    # the 560 (and the T3D) so LACE/ALLNODE-S outperforms the SP and the
    # T3D stays "still superior to the IBM SP" as measured (Section 7.2).
    v5_target_mflops=11.5,
)

CPU_ALPHA_21064 = ScalarCpuModel(
    # "each node has a CPU with a clock speed of 150 MHz and a direct
    # mapped cache of 8KB"; "The T3D's CPU has a peak rating which is 2.3X
    # and 3X the rating of the 590 and 560" (150 vs 66.5/50 MFLOPS peak at
    # 1 flop/cycle).
    name="Alpha-21064",
    clock_hz=150e6,
    cache=CacheSpec(
        size_bytes=8 * 1024, line_bytes=32, associativity=1, miss_penalty_cycles=22.0
    ),
    flops_per_cycle=1.0,
    # "We attribute the T3D's poor performance to the small, direct-mapped
    # cache" — anchored between the SP and the 560, so the T3D loses to
    # ALLNODE-S below 8 processors and wins beyond (Section 7.2).
    v5_target_mflops=13.8,
)

CPU_YMP = VectorCpuModel(
    # Cray Y-MP/8: "a peak rating of approximately 2.7 GigaFLOPS" -> ~333
    # MFLOPS per CPU.  The anchor emerges from "The performance of
    # LACE/590 with 16 processors is comparable to the single node
    # performance of the Y-MP" (Section 7.2).
    name="Y-MP CPU",
    r_inf_mflops=320.0,
    n_half=25.0,
    vector_fraction=0.99,
    scalar_mflops=30.0,
)

# ---------------------------------------------------------------------------
# Platforms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeModel:
    """A processing node: one CPU plus the per-node working-set size."""

    cpu: ScalarCpuModel
    working_set_bytes: float | None = None
    """None = derive from the decomposed grid size at run time."""


@dataclass(frozen=True)
class Platform:
    """A complete machine: nodes + interconnect + message library."""

    name: str
    cpu: ScalarCpuModel | None
    network_factory: Callable[[int], Network]
    library: LibraryModel
    max_procs: int
    description: str = ""
    vector_cpu: VectorCpuModel | None = None

    def network(self, nnodes: int) -> Network:
        return self.network_factory(nnodes)

    def with_library(self, library: LibraryModel) -> "Platform":
        return replace(
            self, library=library, name=f"{self.name}/{library.name}"
        )

    def with_network(
        self, factory: Callable[[int], Network], label: str
    ) -> "Platform":
        return replace(self, network_factory=factory, name=label)


LACE_560 = Platform(
    name="LACE/560+ALLNODE-S",
    cpu=CPU_RS6000_560,
    network_factory=AllnodeNetwork.slow,
    library=PVM,
    max_procs=16,
    description="LACE upper half: RS6000/560 nodes on the ALLNODE prototype "
    "switch (32 Mbps/link), off-the-shelf PVM 3.2.2.",
)

LACE_590 = Platform(
    name="LACE/590+ALLNODE-F",
    cpu=CPU_RS6000_590,
    network_factory=AllnodeNetwork.fast,
    library=PVM,
    max_procs=16,
    description="LACE lower half: RS6000/590 nodes on the fast ALLNODE "
    "switch (64 Mbps/link), PVM 3.2.2.",
)

LACE_560_ETHERNET = LACE_560.with_network(
    EthernetNetwork, "LACE/560+Ethernet"
)

LACE_560_FDDI = LACE_560.with_network(FddiNetwork, "LACE/560+FDDI")

LACE_590_ATM = LACE_590.with_network(AtmNetwork, "LACE/590+ATM")

IBM_SP = Platform(
    name="IBM SP",
    cpu=CPU_RS6000_370,
    network_factory=SPSwitchNetwork,
    library=MPL,
    max_procs=16,
    description="16 RS6K/370 nodes on the SP high-performance switch; "
    "MPL native library (PVMe variant via with_library).",
)

IBM_SP_PVME = IBM_SP.with_library(PVME)

CRAY_T3D = Platform(
    name="Cray T3D",
    cpu=CPU_ALPHA_21064,
    network_factory=lambda n: Torus3DNetwork(dims=(8, 4, 2)),
    library=CRAY_PVM,
    max_procs=16,
    description="8x4x2 torus of 150 MHz Alphas with 8KB direct-mapped "
    "caches; Cray's customized PVM.",
)

CRAY_YMP = Platform(
    name="Cray Y-MP",
    cpu=None,
    vector_cpu=CPU_YMP,
    network_factory=lambda n: CrossbarNetwork(n, bytes_per_s=4e9, latency=0.0),
    library=PVM,  # unused: the Y-MP model is loop-parallel shared memory
    max_procs=8,
    description="8-CPU shared-memory vector multiprocessor, DOALL "
    "parallelization (see repro.simulate.sharedmem).",
)

_ALL = {
    p.name.lower(): p
    for p in (
        LACE_560,
        LACE_590,
        LACE_560_ETHERNET,
        LACE_560_FDDI,
        LACE_590_ATM,
        IBM_SP,
        IBM_SP_PVME,
        CRAY_T3D,
        CRAY_YMP,
    )
}


def platform_by_name(name: str) -> Platform:
    """Look up a platform configuration by (case-insensitive) name."""
    try:
        return _ALL[name.lower()]
    except KeyError:
        raise KeyError(f"unknown platform {name!r}; known: {sorted(_ALL)}") from None
