"""Halo-exchange orientation and version grouping, against a stub comm."""

import numpy as np
import pytest

from repro.parallel.halo import (
    ExchangePolicy,
    exchange_flux_high,
    exchange_flux_low,
    exchange_state_halo_high,
    exchange_state_halo_low,
    exchange_uvT,
)
from repro.parallel.versions import version_by_number


class LoopbackComm:
    """Stub: records sends; receives replay a scripted mailbox."""

    def __init__(self, inbox=None):
        self.sent = []
        self.inbox = inbox or {}

    def send(self, dest, tag, array):
        self.sent.append((dest, tag, np.asarray(array).copy()))

    def recv(self, source, tag):
        return self.inbox[(source, tag)]

    def recv_view(self, source, tag, timeout=None):
        # recv_view is part of the Communicator contract now (the ABC
        # supplies this exact copy-semantics default).
        from repro.msglib.api import OwnedView

        return OwnedView(np.array(self.recv(source, tag)))


GROUPED = ExchangePolicy(split_flux_columns=False)
SPLIT = ExchangePolicy(split_flux_columns=True)


class TestPolicy:
    def test_from_version(self):
        assert ExchangePolicy.from_version(version_by_number(5)) == ExchangePolicy()
        assert ExchangePolicy.from_version(version_by_number(6)).overlap
        assert ExchangePolicy.from_version(version_by_number(7)).split_flux_columns


class TestUvT:
    def test_interior_rank_sends_both_edges(self, rng):
        nr = 6
        u, v, T = (rng.random((5, nr)) for _ in range(3))
        lo_ghost = rng.random((3, nr))
        hi_ghost = rng.random((3, nr))
        comm = LoopbackComm(
            {(1, "t:uvT:toright"): lo_ghost, (3, "t:uvT:toleft"): hi_ghost}
        )
        halo_lo, halo_hi = exchange_uvT(comm, "t", u, v, T, left=1, right=3)
        assert np.array_equal(halo_lo, lo_ghost)
        assert np.array_equal(halo_hi, hi_ghost)
        # Sent the packed edge columns the right way.
        (d1, t1, a1), (d2, t2, a2) = comm.sent
        assert (d1, t1) == (1, "t:uvT:toleft")
        assert np.array_equal(a1, np.stack([u[0], v[0], T[0]]))
        assert (d2, t2) == (3, "t:uvT:toright")
        assert np.array_equal(a2, np.stack([u[-1], v[-1], T[-1]]))

    def test_edge_rank_one_sided(self, rng):
        u, v, T = (rng.random((5, 4)) for _ in range(3))
        ghost = rng.random((3, 4))
        comm = LoopbackComm({(1, "t:uvT:toleft"): ghost})
        halo_lo, halo_hi = exchange_uvT(comm, "t", u, v, T, left=None, right=1)
        assert halo_lo is None
        assert np.array_equal(halo_hi, ghost)
        assert len(comm.sent) == 1


class TestFluxExchanges:
    def test_high_ghost_orientation(self, rng):
        """High ghosts = right neighbour's first two columns, nearest first."""
        F = rng.random((4, 7, 5))
        neighbour_cols = rng.random((4, 2, 5))
        comm = LoopbackComm({(9, "t:fxh"): neighbour_cols})
        ghosts = exchange_flux_high(comm, "t", F, left=3, right=9, policy=GROUPED)
        assert ghosts.shape == (2, 4, 5)
        assert np.array_equal(ghosts[0], neighbour_cols[:, 0])
        assert np.array_equal(ghosts[1], neighbour_cols[:, 1])
        # And it shipped MY first two columns leftward.
        dest, tag, sent = comm.sent[0]
        assert dest == 3
        assert np.array_equal(sent, F[:, :2])

    def test_low_ghost_orientation(self, rng):
        """Low ghosts = left neighbour's last two columns, nearest first."""
        F = rng.random((4, 7, 5))
        neighbour_cols = rng.random((4, 2, 5))  # their [:, -2:]
        comm = LoopbackComm({(3, "t:fxl"): neighbour_cols})
        ghosts = exchange_flux_low(comm, "t", F, left=3, right=9, policy=GROUPED)
        # Nearest ghost = their LAST column = index 1 of the sent pair.
        assert np.array_equal(ghosts[0], neighbour_cols[:, 1])
        assert np.array_equal(ghosts[1], neighbour_cols[:, 0])
        dest, tag, sent = comm.sent[0]
        assert dest == 9
        assert np.array_equal(sent, F[:, -2:])

    def test_boundary_rank_returns_none(self, rng):
        F = rng.random((4, 7, 5))
        comm = LoopbackComm()
        assert (
            exchange_flux_high(comm, "t", F, left=0, right=None, policy=GROUPED)
            is None
        )
        # Still sent to the left neighbour.
        assert len(comm.sent) == 1

    def test_v7_splits_into_single_columns(self, rng):
        F = rng.random((4, 7, 5))
        c0, c1 = rng.random((4, 5)), rng.random((4, 5))
        comm = LoopbackComm({(9, "t:fxh:c0"): c0, (9, "t:fxh:c1"): c1})
        ghosts = exchange_flux_high(comm, "t", F, left=3, right=9, policy=SPLIT)
        assert np.array_equal(ghosts[0], c0)
        assert np.array_equal(ghosts[1], c1)
        # Two separate sends, same total data.
        assert len(comm.sent) == 2
        total = sum(a.size for _, _, a in comm.sent)
        assert total == F[:, :2].size


class TestStateHalo:
    def test_low_flows_rightward(self, rng):
        q = rng.random((4, 6, 3))
        left_cols = rng.random((4, 2, 3))
        comm = LoopbackComm({(0, "t:qlo"): left_cols})
        ghosts = exchange_state_halo_low(comm, "t", q, left=0, right=2)
        assert np.array_equal(ghosts[0], left_cols[:, 1])  # nearest first
        assert np.array_equal(ghosts[1], left_cols[:, 0])
        dest, _, sent = comm.sent[0]
        assert dest == 2
        assert np.array_equal(sent, q[:, -2:])

    def test_high_flows_leftward(self, rng):
        q = rng.random((4, 6, 3))
        right_cols = rng.random((4, 2, 3))
        comm = LoopbackComm({(2, "t:qhi"): right_cols})
        ghosts = exchange_state_halo_high(comm, "t", q, left=0, right=2)
        assert np.array_equal(ghosts[0], right_cols[:, 0])
        assert np.array_equal(ghosts[1], right_cols[:, 1])
        dest, _, sent = comm.sent[0]
        assert dest == 0
        assert np.array_equal(sent, q[:, :2])

    def test_global_edges(self, rng):
        q = rng.random((4, 6, 3))
        comm = LoopbackComm()
        assert exchange_state_halo_low(comm, "t", q, left=None, right=None) is None
        assert exchange_state_halo_high(comm, "t", q, left=None, right=None) is None
        assert comm.sent == []
