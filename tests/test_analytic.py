"""The closed-form model vs the discrete-event simulation.

The DESIGN.md validation strategy: "DES against a closed-form analytic
performance model in contention-free regimes."
"""

import pytest

from repro.machines.platforms import (
    CRAY_T3D,
    IBM_SP,
    LACE_560,
    LACE_560_ETHERNET,
)
from repro.simulate.analytic import (
    analytic_execution_time,
    analytic_saturation_procs,
)
from repro.simulate.machine import SimulatedMachine
from repro.simulate.workload import EULER, NAVIER_STOKES


class TestUncontendedAgreement:
    @pytest.mark.parametrize("platform", [LACE_560, CRAY_T3D, IBM_SP])
    @pytest.mark.parametrize("p", [2, 8, 16])
    def test_des_matches_closed_form(self, platform, p):
        a = analytic_execution_time(platform, p, NAVIER_STOKES)
        d = SimulatedMachine(platform, p).run(NAVIER_STOKES, steps_window=20)
        assert d.execution_time == pytest.approx(
            a.execution_time, rel=0.08
        )

    def test_busy_split_matches(self):
        a = analytic_execution_time(LACE_560, 8, NAVIER_STOKES)
        d = SimulatedMachine(LACE_560, 8).run(NAVIER_STOKES, steps_window=20)
        assert d.busy_time == pytest.approx(a.busy, rel=0.03)

    def test_single_processor_is_pure_compute(self):
        a = analytic_execution_time(LACE_560, 1, NAVIER_STOKES)
        assert a.comm == 0.0
        assert a.execution_time == pytest.approx(9062.5, rel=0.01)

    @pytest.mark.parametrize("app", [NAVIER_STOKES, EULER])
    def test_euler_and_ns_both_covered(self, app):
        a = analytic_execution_time(CRAY_T3D, 8, app)
        d = SimulatedMachine(CRAY_T3D, 8).run(app, steps_window=20)
        assert d.execution_time == pytest.approx(a.execution_time, rel=0.08)


class TestSaturation:
    def test_switched_networks_never_saturate(self):
        assert analytic_saturation_procs(LACE_560, NAVIER_STOKES) is None
        assert analytic_saturation_procs(CRAY_T3D, NAVIER_STOKES) is None

    def test_ethernet_saturates_near_paper_point(self):
        """The closed-form bandwidth argument puts saturation at 8-12
        processors — the paper's Section-7.1 estimate."""
        p = analytic_saturation_procs(LACE_560_ETHERNET, NAVIER_STOKES)
        assert p is not None and 7 <= p <= 12

    def test_utilization_grows_with_procs(self):
        utils = [
            analytic_execution_time(LACE_560_ETHERNET, p, NAVIER_STOKES).utilization
            for p in (2, 4, 8)
        ]
        assert utils[0] < utils[1] < utils[2]

    def test_des_and_analytic_agree_on_saturated_regime(self):
        a = analytic_execution_time(LACE_560_ETHERNET, 16, NAVIER_STOKES)
        d = SimulatedMachine(LACE_560_ETHERNET, 16).run(
            NAVIER_STOKES, steps_window=20
        )
        assert a.utilization > 1.0
        assert d.execution_time == pytest.approx(a.execution_time, rel=0.2)


class TestVersionEffects:
    def test_v7_adds_library_cost(self):
        v5 = analytic_execution_time(LACE_560, 8, NAVIER_STOKES, version=5)
        v7 = analytic_execution_time(LACE_560, 8, NAVIER_STOKES, version=7)
        assert v7.busy > v5.busy
