"""One-sided 2-4 differences and cubic ghost extrapolation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numerics.stencils import (
    backward_difference,
    cubic_ghosts,
    extend_axis,
    forward_difference,
)


def _poly_field(n, h, coeffs):
    """1-D polynomial samples arranged as a (1, n, 3) field."""
    x = np.arange(n) * h
    f = sum(c * x**k for k, c in enumerate(coeffs))
    return np.broadcast_to(f[None, :, None], (1, n, 3)).copy(), x


class TestCubicGhosts:
    @pytest.mark.parametrize("coeffs", [(1.0,), (0.5, 2.0), (1, -1, 3), (2, 1, -1, 0.5)])
    def test_exact_for_cubics(self, coeffs):
        f, x = _poly_field(8, 0.5, coeffs)
        g1, g2 = cubic_ghosts(f, axis=1, side="low")
        exact = lambda xx: sum(c * xx**k for k, c in enumerate(coeffs))
        assert g1[0, 0] == pytest.approx(exact(-0.5), rel=1e-12, abs=1e-12)
        assert g2[0, 0] == pytest.approx(exact(-1.0), rel=1e-12, abs=1e-12)
        h1, h2 = cubic_ghosts(f, axis=1, side="high")
        assert h1[0, 0] == pytest.approx(exact(4.0), rel=1e-12)
        assert h2[0, 0] == pytest.approx(exact(4.5), rel=1e-12)

    def test_not_exact_for_quartic(self):
        f, x = _poly_field(8, 1.0, (0, 0, 0, 0, 1.0))  # x^4
        g1, _ = cubic_ghosts(f, axis=1, side="low")
        assert g1[0, 0] != pytest.approx(1.0, abs=1e-6)  # (-1)^4 = 1

    def test_requires_four_points(self):
        f = np.zeros((1, 3, 2))
        with pytest.raises(ValueError, match="at least 4"):
            cubic_ghosts(f, axis=1, side="low")

    def test_invalid_side(self):
        f = np.zeros((1, 6, 2))
        with pytest.raises(ValueError, match="side"):
            cubic_ghosts(f, axis=1, side="middle")


class TestExtendAxis:
    def test_shape(self):
        f = np.ones((4, 10, 6))
        ext = extend_axis(f, axis=1)
        assert ext.shape == (4, 14, 6)
        assert np.array_equal(ext[:, 2:12, :], f)

    def test_explicit_ghosts_used(self):
        f = np.zeros((1, 6, 2))
        low = np.stack([np.full((1, 2), 7.0), np.full((1, 2), 9.0)])
        ext = extend_axis(f, axis=1, low=low)
        # Nearest ghost first: index 1 holds g1, index 0 holds g2.
        assert np.all(ext[:, 1, :] == 7.0)
        assert np.all(ext[:, 0, :] == 9.0)

    def test_extends_along_last_axis(self):
        f = np.random.default_rng(0).random((4, 6, 8))
        ext = extend_axis(f, axis=2)
        assert ext.shape == (4, 6, 12)
        assert np.array_equal(ext[:, :, 2:10], f)


class TestOneSidedDifferences:
    @pytest.mark.parametrize("coeffs", [(3.0,), (1, 2), (2.5, -0.75)])
    def test_exact_for_linears(self, coeffs):
        """A single one-sided 2-4 difference is exact through linears."""
        h = 0.3
        f, x = _poly_field(12, h, coeffs)
        ext = extend_axis(f, axis=1)
        dfwd = forward_difference(ext, axis=1, h=h)
        dbwd = backward_difference(ext, axis=1, h=h)
        exact = coeffs[1] if len(coeffs) > 1 else 0.0
        assert np.allclose(dfwd[0, :, 0], exact, rtol=1e-12, atol=1e-12)
        assert np.allclose(dbwd[0, :, 0], exact, rtol=1e-12, atol=1e-12)

    def test_leading_error_is_antisymmetric(self):
        """Taylor analysis: D+- = f' +- (h/3) f'' exactly for quadratics —
        the antisymmetric errors cancel in the predictor/corrector pair."""
        h = 0.25
        f, x = _poly_field(12, h, (0.0, 0.0, 1.0))  # f = x^2
        ext = extend_axis(f, axis=1)
        dfwd = forward_difference(ext, axis=1, h=h)
        dbwd = backward_difference(ext, axis=1, h=h)
        assert np.allclose(dfwd[0, :, 0], 2 * x + 2 * h / 3, rtol=1e-11)
        assert np.allclose(dbwd[0, :, 0], 2 * x - 2 * h / 3, rtol=1e-11)

    def test_average_exact_for_cubics(self):
        """The forward/backward average is exact through cubics."""
        h = 0.2
        coeffs = (1.0, -2.0, 0.5, 0.25)
        f, x = _poly_field(12, h, coeffs)
        ext = extend_axis(f, axis=1)
        avg = 0.5 * (
            forward_difference(ext, axis=1, h=h)
            + backward_difference(ext, axis=1, h=h)
        )
        exact = -2.0 + 1.0 * x + 0.75 * x**2
        assert np.allclose(avg[0, :, 0], exact, rtol=1e-10, atol=1e-10)

    def test_forward_backward_average_is_fourth_order(self):
        """The average of the two one-sided stencils cancels the h^3 term —
        the mechanism behind the scheme's 4th-order spatial accuracy."""
        errs = []
        for n in (16, 32, 64):
            h = 2 * np.pi / n
            x = np.arange(n) * h
            f = np.sin(x)[None, :, None] * np.ones((1, 1, 2))
            low = np.stack([f[:, -1, :], f[:, -2, :]])
            high = np.stack([f[:, 0, :], f[:, 1, :]])
            ext = extend_axis(f, axis=1, low=low, high=high)
            d = 0.5 * (
                forward_difference(ext, axis=1, h=h)
                + backward_difference(ext, axis=1, h=h)
            )
            errs.append(np.abs(d[0, :, 0] - np.cos(x)).max())
        order = np.log2(errs[1] / errs[2])
        assert 3.6 < order < 4.4

    @given(st.integers(8, 40))
    @settings(max_examples=20, deadline=None)
    def test_constant_field_has_zero_difference(self, n):
        f = np.full((2, n, 3), 4.2)
        ext = extend_axis(f, axis=1)
        assert np.allclose(forward_difference(ext, 1, 0.1), 0.0, atol=1e-12)
        assert np.allclose(backward_difference(ext, 1, 0.1), 0.0, atol=1e-12)
