"""The split Gottlieb-Turkel 2-4 MacCormack operators L1 and L2.

Each :class:`SplitOperator` advances the full time step ``dt`` along one
direction.  For the axial direction the split equation is ``q_t + F_x = 0``
(the ``r`` weight is constant along ``x`` and cancels); for the radial
direction it is ``q_t = (S - (r G)_r) / r`` with the axisymmetric source
``S = (0, 0, p - tau_tt, 0)``.

``L1`` uses the forward one-sided difference in the predictor and the
backward one in the corrector::

    q*      = q   + dt * (S(q)  - D+ flux(q) ) / w
    q^{n+1} = 1/2 [ q + q* + dt * (S(q*) - D- flux(q*)) / w ]

and ``L2`` swaps the two.  Alternating ``L1x L1r`` with ``L2r L2x`` makes the
composite scheme fourth-order in space and second-order in time (Gottlieb &
Turkel 1976).

The operator is deliberately ignorant of physics and parallelism: a
:class:`SweepWorkspace` supplies the flux/source evaluation and the ghost
planes for the one-sided stencils.  The serial solver fills ghosts by cubic
extrapolation (paper's artificial points); the distributed solver fills the
interior-boundary ghosts with halo data received from neighbours, which is
exactly why its arithmetic is bitwise-identical to the serial solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..obs import get_tracer
from .stencils import backward_difference, extend_axis, forward_difference

#: Phase labels passed to workspace hooks.
PREDICTOR = "predictor"
CORRECTOR = "corrector"


@dataclass
class SweepScratch:
    """Preallocated buffers for one sweep direction (fused kernel backend).

    All arrays are caller-owned and persist across steps; the two sweep
    directions of a solver may share ``q_star``/``rate``/``tmp`` (the sweeps
    run sequentially) but each needs its own ``ext`` because the
    ghost-extended shape depends on the sweep axis.

    Attributes
    ----------
    ext:
        Ghost-extended flux buffer — state shape with the sweep axis grown
        by 4 (two ghost planes each side).
    q_star:
        Predicted state, state-shaped.
    rate:
        ``dq/dt`` accumulator, state-shaped.
    tmp:
        State-shaped scratch for the one-sided difference.
    ops:
        Compiled kernel ops (``None`` for the fused numpy path).  When
        set, the one-sided difference + source/weight chain and the
        predictor/corrector combines run as single native passes —
        bitwise-identical to the ufunc chains they replace.
    """

    ext: np.ndarray
    q_star: np.ndarray
    rate: np.ndarray
    tmp: np.ndarray
    ops: object | None = None


@dataclass
class SweepWorkspace:
    """Pluggable flux evaluation and ghost supply for one sweep direction.

    Attributes
    ----------
    flux:
        ``flux(q, phase) -> (weighted_flux, source_or_None)``.  The flux must
        already include the ``r`` weight for radial sweeps and viscous
        contributions for Navier-Stokes.
    low_ghosts, high_ghosts:
        ``f(flux_array, phase) -> ndarray of shape (2, ...) or None``.
        ``None`` selects cubic extrapolation.  Ordered outward (nearest
        ghost first).
    inv_weight:
        ``1/r`` broadcastable to the state shape for radial sweeps, ``1.0``
        for axial sweeps.
    fix_state:
        Optional hook applied to the predicted state before the corrector
        flux evaluation (used to pin Dirichlet boundaries mid-step).
    scratch:
        Optional :class:`SweepScratch` enabling the zero-allocation path of
        :meth:`SplitOperator.apply` (requires the caller to pass ``out``).
        When set, the ``flux`` callable must return arrays that do not alias
        the scratch buffers.  ``None`` keeps the allocating behaviour.
    post_ghosts:
        Optional split-phase ghost supply replacing ``low_ghosts`` /
        ``high_ghosts`` (the overlapped V6 exchange).  Called as
        ``post_ghosts(flux, phase) -> (lo, hi, pending)``: it deposits
        the exchange's send legs, *posts* the receive, and returns the
        provisional ghost planes for the full rate pass (``None`` for
        cubic extrapolation) plus a pending handle — ``None``, or an
        object with ``finish() -> ghosts | None`` (duck-typed
        :class:`~repro.parallel.halo.PendingGhosts`).  When ``finish``
        returns real ghosts, the two edge columns of the rate are
        recomputed from them; when it returns ``None`` the provisional
        ghosts were already final.  Requires ``scratch``.
    """

    flux: Callable[[np.ndarray, str], tuple[np.ndarray, Optional[np.ndarray]]]
    low_ghosts: Callable[[np.ndarray, str], Optional[np.ndarray]] = (
        lambda flux, phase: None
    )
    high_ghosts: Callable[[np.ndarray, str], Optional[np.ndarray]] = (
        lambda flux, phase: None
    )
    inv_weight: np.ndarray | float = 1.0
    fix_state: Callable[[np.ndarray, str], np.ndarray] = lambda q, phase: q
    scratch: Optional[SweepScratch] = None
    post_ghosts: Optional[Callable[[np.ndarray, str], tuple]] = None


@dataclass
class SplitOperator:
    """One-dimensional 2-4 MacCormack operator along a given array axis.

    Parameters
    ----------
    axis:
        Array axis the sweep differences along (1 = axial, 2 = radial for
        ``(4, nx, nr)`` state arrays).
    h:
        Grid spacing along that axis.
    variant:
        1 for ``L1`` (forward predictor), 2 for ``L2`` (backward predictor).
    workspace:
        The physics/ghost plumbing (see :class:`SweepWorkspace`).
    """

    axis: int
    h: float
    variant: int
    workspace: SweepWorkspace

    def __post_init__(self) -> None:
        if self.variant not in (1, 2):
            raise ValueError(f"variant must be 1 or 2, got {self.variant}")

    def _difference(self, flux: np.ndarray, phase: str) -> np.ndarray:
        ws = self.workspace
        forward = (self.variant == 1) == (phase == PREDICTOR)
        ext = extend_axis(
            flux,
            self.axis,
            low=ws.low_ghosts(flux, phase),
            high=ws.high_ghosts(flux, phase),
        )
        if forward:
            return forward_difference(ext, self.axis, self.h)
        return backward_difference(ext, self.axis, self.h)

    def _rate(self, q: np.ndarray, phase: str) -> np.ndarray:
        """``dq/dt`` for this split direction: ``(S - D flux) / w``."""
        ws = self.workspace
        flux, source = ws.flux(q, phase)
        d = self._difference(flux, phase)
        if source is None:
            rate = -d
        else:
            rate = source - d
        return rate * ws.inv_weight

    def _rate_into(self, q: np.ndarray, phase: str, sc: SweepScratch) -> np.ndarray:
        """Zero-allocation ``_rate``: bitwise-identical, into ``sc.rate``."""
        ws = self.workspace
        flux, source = ws.flux(q, phase)
        forward = (self.variant == 1) == (phase == PREDICTOR)
        pending = None
        if ws.post_ghosts is not None:
            # Overlapped V6 exchange: send legs deposited + receive posted
            # up front; the full rate pass below runs with provisional
            # ghosts while the message is in flight, then the two in-flight
            # edge columns are recomputed from the real ghosts.
            lo, hi, pending = ws.post_ghosts(flux, phase)
        else:
            lo = ws.low_ghosts(flux, phase)
            hi = ws.high_ghosts(flux, phase)
        if sc.ops is not None:
            # Compiled path: the ghost extension is folded into the rate
            # kernel, which consumes the one boundary the one-sided stencil
            # reaches past.  Both providers still run (their send legs keep
            # distributed neighbours in lockstep), matching extend_axis.
            kernel = sc.ops.rate if pending is None else sc.ops.rate_interior
            d = kernel(
                flux, lo, hi,
                self.axis, self.h, forward, source, ws.inv_weight,
                sc.rate,
            )
        else:
            ext = extend_axis(flux, self.axis, low=lo, high=hi, out=sc.ext)
            diff = forward_difference if forward else backward_difference
            d = diff(ext, self.axis, self.h, out=sc.rate, tmp=sc.tmp)
            if source is None:
                np.negative(d, out=d)
            else:
                np.subtract(source, d, out=d)
            iw = ws.inv_weight
            # Skip the identity weight (x * 1.0 == x bitwise); radial sweeps
            # carry the 1/r array and multiply in place.
            if not (isinstance(iw, float) and iw == 1.0):
                np.multiply(d, iw, out=d)
        if pending is not None:
            ghosts = pending.finish()
            if ghosts is not None:
                if sc.ops is not None:
                    sc.ops.rate_edges(
                        flux, ghosts, self.axis, self.h, forward, source,
                        ws.inv_weight, d,
                    )
                else:
                    from .kernels.overlap import rate_edges

                    rate_edges(
                        flux, ghosts, self.axis, self.h, forward, source,
                        ws.inv_weight, d,
                    )
        return d

    def apply(
        self, q: np.ndarray, dt: float, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Advance ``q`` by ``dt`` along this direction.

        Without ``out`` the result is a fresh array (the baseline path).
        With ``out`` (and ``workspace.scratch`` set) every intermediate is
        written into preallocated buffers and the result lands in ``out``;
        the two paths are bitwise-identical.  ``out`` must not alias ``q``.
        """
        tr = get_tracer()
        ws = self.workspace
        sc = ws.scratch
        if out is None or sc is None:
            with tr.span("maccormack.predictor", axis=self.axis):
                q_star = q + dt * self._rate(q, PREDICTOR)
                q_star = ws.fix_state(q_star, PREDICTOR)
            with tr.span("maccormack.corrector", axis=self.axis):
                q_new = 0.5 * (q + q_star + dt * self._rate(q_star, CORRECTOR))
                return ws.fix_state(q_new, CORRECTOR)
        if out is q:
            raise ValueError("apply(out=...) must not alias the input state")
        with tr.span("maccormack.predictor", axis=self.axis):
            rate = self._rate_into(q, PREDICTOR, sc)
            if sc.ops is not None:
                sc.ops.predictor(q, rate, dt, sc.q_star)
            else:
                np.multiply(rate, dt, out=rate)
                np.add(q, rate, out=sc.q_star)
            q_star = ws.fix_state(sc.q_star, PREDICTOR)
        with tr.span("maccormack.corrector", axis=self.axis):
            rate = self._rate_into(q_star, CORRECTOR, sc)
            if sc.ops is not None:
                sc.ops.corrector(q, q_star, rate, dt, out)
            else:
                np.add(q, q_star, out=out)
                np.multiply(rate, dt, out=rate)
                np.add(out, rate, out=out)
                np.multiply(out, 0.5, out=out)
            return ws.fix_state(out, CORRECTOR)
