"""mpi4py backend: run the distributed solver on a real MPI cluster.

The in-process :class:`~repro.msglib.virtual.VirtualCluster` is the default
(and the only backend exercised in this repository's CI-like environment,
which has neither MPI nor multiple cores); this adapter maps the same
:class:`~repro.msglib.api.Communicator` interface onto ``mpi4py`` so the
identical SPMD solver code runs across real processes::

    mpiexec -n 8 python scripts/mpi_runner.py --nx 250 --nr 100 --steps 100

Design notes:

* Our tags are strings (step/op/phase encoded); MPI tags are small ints.
  The adapter hashes each string into the MPI tag space and sends the
  string alongside the payload header so collisions are detected rather
  than silently mismatched.
* Sends use ``MPI.Comm.Send`` on a contiguous copy after a small pickled
  header (shape/dtype/tag) — the buffered-send semantics the solver's
  deadlock-freedom argument requires hold because each neighbour exchange
  posts at most one in-flight message per direction, well inside MPI's
  eager threshold for the solver's kilobyte-scale messages.
"""

from __future__ import annotations

import numpy as np

from .api import Communicator, CommStats

#: MPI tag space is implementation-defined but at least 2**15 - 1.
_TAG_SPACE = 32_000


def _mpi():
    try:
        from mpi4py import MPI  # noqa: PLC0415
    except ImportError as exc:  # pragma: no cover - exercised off-cluster
        raise RuntimeError(
            "mpi4py is not installed; use the VirtualCluster backend "
            "(repro.msglib.virtual) or install mpi4py on an MPI cluster"
        ) from exc
    return MPI


def tag_to_int(tag: str) -> int:
    """Deterministic string-tag -> MPI-tag mapping (stable across ranks)."""
    h = 2166136261
    for ch in tag.encode():
        h = (h ^ ch) * 16777619 & 0xFFFFFFFF
    return h % _TAG_SPACE


class MPIComm(Communicator):
    """Communicator over ``mpi4py.MPI.COMM_WORLD`` (or a sub-communicator)."""

    def __init__(self, comm=None) -> None:
        MPI = _mpi()
        self._MPI = MPI
        self._comm = comm if comm is not None else MPI.COMM_WORLD
        self.rank = self._comm.Get_rank()
        self.size = self._comm.Get_size()
        self.stats = CommStats()

    def send(self, dest: int, tag: str, array: np.ndarray) -> None:
        payload = np.ascontiguousarray(array)
        itag = tag_to_int(tag)
        header = (tag, payload.shape, payload.dtype.str)
        self._comm.send(header, dest=dest, tag=itag)
        self._comm.Send(payload, dest=dest, tag=itag)
        self.stats.record_send(dest, tag, payload.nbytes)

    def recv(
        self, source: int, tag: str, timeout: float | None = None
    ) -> np.ndarray:
        itag = tag_to_int(tag)
        if timeout is not None:  # pragma: no cover - exercised on-cluster
            # MPI has no timed receive; poll the matching envelope so the
            # fault layer's retry/backoff loop works over this adapter too.
            import time as _t

            from .vchannel import DeadlockError

            deadline = _t.monotonic() + timeout
            while not self._comm.iprobe(source=source, tag=itag):
                if _t.monotonic() >= deadline:
                    raise DeadlockError(
                        f"rank {self.rank}: no message from {source} tag "
                        f"{tag!r} within {timeout}s (likely deadlock, tag "
                        "mismatch, or a lost message)"
                    )
                _t.sleep(1e-4)
        header = self._comm.recv(source=source, tag=itag)
        got_tag, shape, dtype = header
        if got_tag != tag:
            raise RuntimeError(
                f"MPI tag collision: expected {tag!r}, received {got_tag!r} "
                f"(both hash to {itag}); widen _TAG_SPACE or rename tags"
            )
        buf = np.empty(shape, dtype=np.dtype(dtype))
        self._comm.Recv(buf, source=source, tag=itag)
        self.stats.record_recv(source, tag, buf.nbytes)
        return buf

    # MPI has efficient native collectives; override the generic loops.
    def allreduce_min(self, value: float, tag: str = "allreduce") -> float:
        return float(self._comm.allreduce(value, op=self._MPI.MIN))

    def barrier(self, tag: str = "barrier") -> None:
        self._comm.Barrier()

    def gather_arrays(self, array: np.ndarray, tag: str = "gather"):
        # Remote contributions arrive as fresh (deserialized) copies, but
        # the root's own slot passes through in-process: force a copy so
        # rank 0's gathered slot never aliases the caller's send buffer.
        payload = np.ascontiguousarray(array)
        if self.rank == 0 and payload is array:
            payload = payload.copy()
        parts = self._comm.gather(payload, root=0)
        return parts if self.rank == 0 else None
