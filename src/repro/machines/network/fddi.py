"""FDDI token ring (100 Mbps, LACE nodes 9-24).

A shared medium like Ethernet but ten times faster and with token-passing
access.  The paper found FDDI performance "almost identical" to ALLNODE-S:
its faster shared link balances the ALLNODE's slower-but-parallel paths.
"""

from __future__ import annotations

from .base import Network


class FddiNetwork(Network):
    """Single token-ring medium shared by all stations."""

    def __init__(
        self,
        nnodes: int,
        bandwidth_bps: float = 100e6,
        efficiency: float = 0.75,
        latency: float = 0.5e-3,
        frame_overhead_bytes: int = 60,
    ) -> None:
        self.name = "FDDI"
        self.nnodes = nnodes
        self.bandwidth_bps = bandwidth_bps
        #: Token rotation and frame overheads eat into the raw 100 Mbps.
        self.efficiency = efficiency
        #: Mean token-acquisition delay per message.
        self.latency = latency
        self.frame_overhead_bytes = frame_overhead_bytes

    def link_ids(self, src: int, dst: int) -> list[str]:
        return ["ring"]

    def capacities(self) -> dict[str, int]:
        return {"ring": 1}

    def transfer_time(self, nbytes: int) -> float:
        wire_bytes = nbytes + self.frame_overhead_bytes
        return wire_bytes * 8.0 / (self.bandwidth_bps * self.efficiency)

    def saturation_bandwidth(self) -> float:
        return self.bandwidth_bps * self.efficiency / 8.0
