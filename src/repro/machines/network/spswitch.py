"""IBM SP high-performance switch (Omega-network variant, Stunkel et al.).

"This network, similar in topology to ALLNODE, permits multiple
contentionless paths between nodes" (paper Section 4.3).  The SP1 switch
carries ~40 MB/s per port with microsecond-class hardware latency; the
software stack (MPL or PVMe) contributes the dominant per-message cost,
which lives in the library model, not here.  With this fabric the paper
sees "very good speedup characteristics, with an almost linear drop in
execution time".
"""

from __future__ import annotations

from .base import Network, per_node_links


class SPSwitchNetwork(Network):
    """Per-port switched fabric with ample internal capacity."""

    def __init__(
        self,
        nnodes: int,
        port_bytes_per_s: float = 40e6,
        latency: float = 40e-6,
    ) -> None:
        self.name = "SP-switch"
        self.nnodes = nnodes
        self.port_bytes_per_s = port_bytes_per_s
        self.latency = latency

    def link_ids(self, src: int, dst: int) -> list[str]:
        return sorted(per_node_links(src, dst))

    def capacities(self) -> dict[str, int]:
        caps: dict[str, int] = {}
        for n in range(self.nnodes):
            caps[f"in:{n}"] = 1
            caps[f"out:{n}"] = 1
        return caps

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.port_bytes_per_s

    def saturation_bandwidth(self) -> float:
        return self.nnodes * self.port_bytes_per_s
