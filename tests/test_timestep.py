"""CFL time-step estimation."""

import numpy as np
import pytest

from repro.grid import Grid
from repro.numerics.timestep import stable_dt
from repro.physics.state import FlowState

from conftest import random_physical_state


class TestConvectiveLimit:
    def test_quiescent_reference(self):
        g = Grid(nx=8, nr=8, length_x=1.0, length_r=1.0)
        st = FlowState.quiescent(g)
        dt = stable_dt(st.q, g.dx, g.dr, cfl=0.5)
        # c = 1 everywhere: dt = cfl / (1/dx + 1/dr).
        assert dt == pytest.approx(0.5 / (1 / g.dx + 1 / g.dr))

    def test_scales_linearly_with_grid(self):
        a = Grid(nx=8, nr=8, length_x=1.0, length_r=1.0)
        b = Grid(nx=8, nr=8, length_x=2.0, length_r=2.0)
        qa = FlowState.quiescent(a).q
        assert stable_dt(qa, b.dx, b.dr) == pytest.approx(
            2 * stable_dt(qa, a.dx, a.dr)
        )

    def test_faster_flow_smaller_dt(self):
        g = Grid(nx=8, nr=8, length_x=1.0, length_r=1.0)
        slow = FlowState.from_primitive(g, 1.0, 0.1, 0.0, 1 / 1.4)
        fast = FlowState.from_primitive(g, 1.0, 2.0, 0.0, 1 / 1.4)
        assert stable_dt(fast.q, g.dx, g.dr) < stable_dt(slow.q, g.dx, g.dr)

    def test_cfl_proportionality(self, small_grid, rng):
        st = random_physical_state(small_grid, rng)
        g = small_grid
        assert stable_dt(st.q, g.dx, g.dr, cfl=0.25) == pytest.approx(
            0.5 * stable_dt(st.q, g.dx, g.dr, cfl=0.5)
        )


class TestViscousLimit:
    def test_large_viscosity_engages_diffusive_limit(self):
        g = Grid(nx=8, nr=8, length_x=1.0, length_r=1.0)
        q = FlowState.quiescent(g).q
        dt_inviscid = stable_dt(q, g.dx, g.dr, mu=0.0)
        dt_viscous = stable_dt(q, g.dx, g.dr, mu=5.0)
        assert dt_viscous < dt_inviscid

    def test_tiny_viscosity_does_not_bind(self):
        g = Grid(nx=8, nr=8, length_x=1.0, length_r=1.0)
        q = FlowState.quiescent(g).q
        assert stable_dt(q, g.dx, g.dr, mu=1e-9) == stable_dt(q, g.dx, g.dr)


class TestDecompositionProperty:
    def test_min_of_slab_dts_equals_global(self, rng):
        """The distributed solver's allreduce-min must be bit-exact."""
        g = Grid(nx=40, nr=12)
        st = random_physical_state(g, rng)
        global_dt = stable_dt(st.q, g.dx, g.dr)
        slabs = [(0, 13), (13, 26), (26, 40)]
        local = [
            stable_dt(st.q[:, lo:hi, :], g.dx, g.dr) for lo, hi in slabs
        ]
        assert min(local) == global_dt  # exact equality
