"""Flow-state container for the conservative variables.

The solver evolves the conservative vector ``q = (rho, rho*u, rho*v, E)``
stored as a single ``(4, nx, nr)`` array; the axisymmetric ``r``-weighting
(the paper's ``Q = r q``) is applied inside the residual evaluation, not in
the stored state, which keeps boundary conditions and diagnostics simple.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import constants
from ..grid import Grid
from . import eos

#: Index of each conservative component in the leading axis.
RHO, RHO_U, RHO_V, ENERGY = 0, 1, 2, 3

NVARS = 4
"""Number of conservative variables."""


@dataclass
class FlowState:
    """Conservative flow variables on a :class:`~repro.grid.Grid`.

    Attributes
    ----------
    grid:
        The grid the state lives on.
    q:
        Conservative array of shape ``(4, nx, nr)`` ordered
        ``(rho, rho*u, rho*v, E)``.
    """

    grid: Grid
    q: np.ndarray
    gamma: float = constants.GAMMA

    def __post_init__(self) -> None:
        self.q = np.ascontiguousarray(self.q, dtype=np.float64)
        expected = (NVARS,) + self.grid.shape
        if self.q.shape != expected:
            raise ValueError(f"state shape {self.q.shape} != expected {expected}")

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_primitive(
        cls,
        grid: Grid,
        rho: np.ndarray | float,
        u: np.ndarray | float,
        v: np.ndarray | float,
        p: np.ndarray | float,
        gamma: float = constants.GAMMA,
    ) -> "FlowState":
        """Build a state from primitive fields (broadcast to the grid)."""
        shape = grid.shape
        rho = np.broadcast_to(np.asarray(rho, dtype=np.float64), shape)
        u = np.broadcast_to(np.asarray(u, dtype=np.float64), shape)
        v = np.broadcast_to(np.asarray(v, dtype=np.float64), shape)
        p = np.broadcast_to(np.asarray(p, dtype=np.float64), shape)
        q = np.empty((NVARS,) + shape)
        q[RHO] = rho
        q[RHO_U] = rho * u
        q[RHO_V] = rho * v
        q[ENERGY] = eos.total_energy(rho, u, v, p, gamma)
        return cls(grid, q, gamma)

    @classmethod
    def quiescent(
        cls, grid: Grid, rho: float = 1.0, p: float = 1.0 / constants.GAMMA
    ) -> "FlowState":
        """A uniform fluid at rest."""
        return cls.from_primitive(grid, rho, 0.0, 0.0, p)

    # -- primitive accessors -------------------------------------------------
    @property
    def rho(self) -> np.ndarray:
        return self.q[RHO]

    @property
    def u(self) -> np.ndarray:
        return self.q[RHO_U] / self.q[RHO]

    @property
    def v(self) -> np.ndarray:
        return self.q[RHO_V] / self.q[RHO]

    @property
    def E(self) -> np.ndarray:
        return self.q[ENERGY]

    @property
    def p(self) -> np.ndarray:
        return eos.pressure(
            self.q[RHO], self.q[RHO_U], self.q[RHO_V], self.q[ENERGY], self.gamma
        )

    @property
    def T(self) -> np.ndarray:
        return eos.temperature(self.rho, self.p, self.gamma)

    @property
    def c(self) -> np.ndarray:
        return eos.sound_speed(self.rho, self.p, self.gamma)

    @property
    def H(self) -> np.ndarray:
        return eos.enthalpy(self.rho, self.E, self.p)

    @property
    def mach(self) -> np.ndarray:
        """Local Mach number ``|velocity| / c``."""
        return np.sqrt(self.u**2 + self.v**2) / self.c

    @property
    def axial_momentum(self) -> np.ndarray:
        """``rho * u`` — the quantity contoured in the paper's Figure 1."""
        return self.q[RHO_U]

    # -- utilities ------------------------------------------------------------
    def copy(self) -> "FlowState":
        return FlowState(self.grid, self.q.copy(), self.gamma)

    def is_physical(self) -> bool:
        """True when density and pressure are everywhere positive and finite."""
        rho, p = self.q[RHO], self.p
        return bool(
            np.all(np.isfinite(self.q))
            and np.all(rho > 0.0)
            and np.all(p > 0.0)
        )

    def conserved_totals(self, radial_weight: bool = True) -> np.ndarray:
        """Volume integrals of the conservative variables.

        For the axisymmetric equations the conserved quantities are
        ``integral(q * r dx dr)`` (times ``2*pi``); planar verification
        configurations pass ``radial_weight=False`` for the unweighted
        sums their periodic telescoping conserves exactly.
        """
        w = self.grid.dx * self.grid.dr
        if radial_weight:
            r = self.grid.rmesh()
            return np.array([np.sum(self.q[k] * r) * w for k in range(NVARS)])
        return np.array([np.sum(self.q[k]) * w for k in range(NVARS)])

    def axial_slab(self, i_lo: int, i_hi: int) -> "FlowState":
        """Copy of the axial slab ``[i_lo, i_hi)`` as a standalone state."""
        sub = self.grid.subgrid(i_lo, i_hi)
        return FlowState(sub, self.q[:, i_lo:i_hi, :].copy(), self.gamma)
