"""The distributed (SPMD) jet solver — one instance per rank.

:class:`DistributedSolver` subclasses the serial
:class:`~repro.numerics.solver.CompressibleSolver` and overrides exactly the
points where subdomain boundaries appear:

* viscous gradients receive neighbour ``(u, v, T)`` ghost columns;
* the one-sided flux stencils receive neighbour flux columns on the side
  the current predictor/corrector phase differences toward;
* the fourth-difference filter receives two conservative-state columns;
* the stable ``dt`` is the all-reduce minimum of the per-slab values;
* inflow forcing runs only on rank 0 and the characteristic outflow only on
  the last rank.

Because every ghost is *real* neighbour data entering the identical
vectorized expressions, the distributed solver is bitwise-identical to the
serial solver for any processor count and any communication version —
verified by the test suite.  This mirrors the paper's property that its
parallelization changes performance, never the numerics.
"""

from __future__ import annotations

import numpy as np

from ..grid import Grid
from ..msglib.api import Communicator
from ..numerics.boundary import AXIS_STATE_SIGNS
from ..numerics.maccormack import CORRECTOR, PREDICTOR, SplitOperator, SweepWorkspace
from ..numerics.solver import CompressibleSolver, SolverConfig
from ..numerics.timestep import stable_dt
from ..physics.state import FlowState
from .decomposition import AxialDecomposition
from .halo import (
    ExchangePolicy,
    exchange_flux_high,
    exchange_flux_low,
    exchange_state_halo_high,
    exchange_state_halo_low,
    exchange_uvT,
)
from .versions import Version, version_by_number


class DistributedSolver(CompressibleSolver):
    """Per-rank solver over an axial block decomposition.

    Parameters
    ----------
    comm:
        A :class:`~repro.msglib.api.Communicator` (e.g. from a
        :class:`~repro.msglib.virtual.VirtualCluster`).
    global_grid:
        The full-domain grid.
    q_global:
        Full-domain conservative array to slice the local slab from (shared
        read-only; each rank copies its slab).
    config:
        The same :class:`~repro.numerics.solver.SolverConfig` the serial
        solver takes.
    version:
        Paper code version (5, 6 or 7) controlling message grouping.
    """

    def __init__(
        self,
        comm: Communicator,
        global_grid: Grid,
        q_global: np.ndarray,
        config: SolverConfig,
        version: int | Version = 5,
    ) -> None:
        self.comm = comm
        self.decomp = AxialDecomposition(global_grid.nx, comm.size)
        self.lo, self.hi = self.decomp.bounds(comm.rank)
        self.left, self.right = self.decomp.neighbors(comm.rank)
        if isinstance(version, int):
            version = version_by_number(version)
        self.version = version
        self.policy = ExchangePolicy.from_version(version)
        self.global_grid = global_grid
        local_grid = global_grid.subgrid(self.lo, self.hi)
        local_state = FlowState(
            local_grid, q_global[:, self.lo : self.hi, :].copy(), config.gamma
        )
        super().__init__(local_state, config)
        if self._ws is not None:
            # Packed halo-line buffers (safe to reuse: sends are buffered).
            self._ws.add_halo_buffers(self.state.q.shape[2])
        # Attribute this solver's spans to its rank (also bound as the
        # thread default so MacCormack-phase spans inherit it under MPI,
        # where no VirtualCluster worker does the binding).
        self._trace_rank = comm.rank
        from ..obs import get_metrics, get_tracer

        get_tracer().bind_rank(comm.rank)
        get_metrics().bind_rank(comm.rank)

    # -- tags -----------------------------------------------------------------
    def _tag(self, op: str, phase: str = "") -> str:
        return f"{self.nstep}:{op}:{phase}"

    # -- halo-aware flux evaluation ------------------------------------------
    def _uvT_halo(self, q: np.ndarray, tag: str):
        """Exchange the paper's velocity/temperature ghost columns."""
        if not self.fm.mu:
            return None
        if self.left is None and self.right is None:
            return None
        u, v, T = self.fm.primitives(q)
        return exchange_uvT(self.comm, tag, u, v, T, self.left, self.right)

    def _uvT_halo_fused(self, q: np.ndarray, tag: str):
        """Halo exchange with primitives evaluated once into the workspace.

        Returns ``(halo, primitives_ready)``: the fused flux kernels skip
        their own primitive evaluation when the packing already did it
        (bitwise the same values either way).
        """
        from ..physics.fluxes import primitives_into

        ws = self._ws
        fm = self.fm
        if not fm.mu:
            return None, False
        primitives_into(
            q, fm.gamma, ws.inv_rho, ws.u, ws.v, ws.p, ws.t2a, ws.t2b, T=ws.T
        )
        if self.left is None and self.right is None:
            return None, True
        halo = exchange_uvT(
            self.comm, tag, ws.u, ws.v, ws.T, self.left, self.right,
            buf=ws.uvT_buf,
        )
        return halo, True

    def _x_workspace(self, variant: int) -> SweepWorkspace:  # type: ignore[override]
        solver = self
        ws = self._ws
        buf = ws.pair_buf if ws is not None else None

        def flux(q, phase):
            tag = solver._tag("x", phase)
            if ws is None:
                return solver.fm.axial_flux(q, uvT_halo=solver._uvT_halo(q, tag)), None
            halo, ready = solver._uvT_halo_fused(q, tag)
            return (
                solver.fm.axial_flux(
                    q, uvT_halo=halo, ws=ws, primitives_ready=ready
                ),
                None,
            )

        def high_ghosts(F, phase):
            # Forward differencing consumes high-side ghosts.
            if (variant == 1) == (phase == PREDICTOR):
                return exchange_flux_high(
                    solver.comm,
                    solver._tag("x", phase),
                    F,
                    solver.left,
                    solver.right,
                    solver.policy,
                    buf=buf,
                )
            return None

        def low_ghosts(F, phase):
            if (variant == 1) == (phase == CORRECTOR):
                return exchange_flux_low(
                    solver.comm,
                    solver._tag("x", phase),
                    F,
                    solver.left,
                    solver.right,
                    solver.policy,
                    buf=buf,
                )
            return None

        return SweepWorkspace(
            flux=flux,
            low_ghosts=low_ghosts,
            high_ghosts=high_ghosts,
            scratch=ws.sweep_x if ws is not None else None,
        )

    def _r_workspace(self, variant: int | None = None) -> SweepWorkspace:  # type: ignore[override]
        solver = self
        ws = self._ws
        base = self._r_workspace_serial()

        def flux(q, phase):
            tag = solver._tag("r", phase)
            if ws is None:
                return solver.fm.radial_flux(q, uvT_halo=solver._uvT_halo(q, tag))
            halo, ready = solver._uvT_halo_fused(q, tag)
            return solver.fm.radial_flux(
                q, uvT_halo=halo, ws=ws, primitives_ready=ready
            )

        return SweepWorkspace(
            flux=flux,
            low_ghosts=base.low_ghosts,
            high_ghosts=base.high_ghosts,
            inv_weight=base.inv_weight,
            scratch=ws.sweep_r if ws is not None else None,
        )

    def _operators(self, variant: int):  # type: ignore[override]
        Lx = SplitOperator(
            axis=1,
            h=self.grid.dx,
            variant=variant,
            workspace=self._x_workspace(variant),
        )
        Lr = SplitOperator(
            axis=2,
            h=self.grid.dr,
            variant=variant,
            workspace=self._r_workspace(variant),
        )
        return Lx, Lr

    # -- time step: global reduction ----------------------------------------
    def current_dt(self) -> float:  # type: ignore[override]
        cfg = self.config
        if cfg.dt is not None:
            return cfg.dt
        if (
            self._dt_cached is None
            or self.nstep % max(cfg.dt_recompute_every, 1) == 0
        ):
            local = stable_dt(
                self.state.q,
                self.grid.dx,
                self.grid.dr,
                cfl=cfg.cfl,
                mu=self.fm.mu,
                gamma=cfg.gamma,
            )
            self._dt_cached = self.comm.allreduce_min(
                local, tag=self._tag("dt")
            )
        return self._dt_cached

    # -- filter halos ------------------------------------------------------------
    def _state_ghosts(self, q: np.ndarray, axis: int, side: str):  # type: ignore[override]
        if axis == 1:
            tag = self._tag("filter")
            buf = self._ws.pair_buf if self._ws is not None else None
            if side == "low":
                return exchange_state_halo_low(
                    self.comm, tag, q, self.left, self.right, buf=buf
                )
            ghosts = exchange_state_halo_high(
                self.comm, tag, q, self.left, self.right, buf=buf
            )
            return ghosts
        # Radial ghosts are local: axis mirror / cubic as in the serial code.
        cfg = self.config
        if cfg.periodic_r:
            return super()._state_ghosts(q, axis, side)
        if side == "low" and cfg.axisymmetric:
            signs = AXIS_STATE_SIGNS[:, None]
            return np.stack([signs * q[:, :, 0], signs * q[:, :, 1]])
        return None

    # -- boundaries: only the owning ranks act --------------------------------
    def _apply_boundaries(self, q_tail: np.ndarray | None, dt: float, variant: int):  # type: ignore[override]
        bc = self.config.boundary
        if bc is None:
            return
        q = self.state.q
        if bc.characteristic_outflow and self.right is None:
            q_t = self._outflow_rates(q_tail, variant)
            from ..numerics.boundary import characteristic_outflow_rates

            rates = characteristic_outflow_rates(
                q_tail[:, -1, :], q_t, self.config.gamma
            )
            q[:, -1, :] = q_tail[:, -1, :] + dt * rates
        if bc.inflow is not None and self.left is None:
            q[:, 0, :] = bc.inflow_column(self.grid.r, self.t, self.config.gamma)
        if bc.sponge is not None and self._sponge_col is not None:
            bc.sponge.apply(q, self._sponge_col)

    # -- gathering ------------------------------------------------------------
    def gather_state(self) -> FlowState | None:
        """Assemble the global state on rank 0 (``None`` elsewhere)."""
        parts = self.comm.gather_arrays(self.state.q, tag=f"{self.nstep}:gather")
        if parts is None:
            return None
        q_full = np.concatenate(parts, axis=1)
        return FlowState(self.global_grid, q_full, self.config.gamma)

    # -- checkpoint/restart ----------------------------------------------------
    def checkpoint(self) -> tuple[int, float, np.ndarray] | None:
        """Gather a recoverable ``(nstep, t, q_global)`` snapshot on rank 0.

        All ranks must call this collectively (it is a gather); non-root
        ranks return ``None``.  The checkpointing runner stores the result
        in a :class:`~repro.parallel.checkpoint.CheckpointStore` outside
        the cluster so a crashed run can resume from it.
        """
        parts = self.comm.gather_arrays(self.state.q, tag=f"{self.nstep}:ckpt")
        if parts is None:
            return None
        return self.nstep, self.t, np.concatenate(parts, axis=1)
