"""Scalar CPU timing model.

Charges cycles per *nominal* application flop from the version's
instruction/memory mix (:class:`repro.parallel.versions.Version`):

``cycles/flop = 1/flops_per_cycle * loop_overhead            (FP issue)
              + int_overhead * loop_overhead                  (addressing/loops)
              + divisions_per_flop * division_cycles
              + pow_calls_per_flop * pow_cycles
              + mem_refs_per_flop * miss_rate * miss_penalty  (memory stalls)``

with ``miss_rate`` from :func:`repro.machines.cache.sweep_miss_rate`.  The
mechanistic terms fix the *ratios* between code versions and between CPUs
with different caches; the optional ``v5_target_mflops`` anchor rescales the
absolute level to a documented sustained rate (the paper gives 16.0 MFLOPS
for Version 5 on the RS6000/560 — other platforms' anchors are derived from
the paper's relative statements; see :mod:`repro.machines.platforms`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..parallel.versions import Version, version_by_number
from .cache import CacheSpec, sweep_miss_rate

#: Default solver working set: the 250x100 grid times ~10 live arrays of
#: doubles — what one sweep traverses between reuses.
DEFAULT_WORKING_SET = 250 * 100 * 8 * 10


@dataclass(frozen=True)
class ScalarCpuModel:
    """A scalar (RISC) processor with one data cache."""

    name: str
    clock_hz: float
    cache: CacheSpec
    flops_per_cycle: float = 2.0
    """Peak FP issue rate (POWER/Alpha fused multiply-add era)."""
    division_cycles: float = 17.0
    pow_cycles: float = 150.0
    """Cost of a library exponentiation call."""
    int_overhead_cpf: float = 0.75
    """Integer/addressing/loop cycles per flop."""
    v5_target_mflops: float | None = None
    """Anchor: sustained MFLOPS for Version 5 (None = purely mechanistic)."""

    # -- core model -------------------------------------------------------------
    def _raw_cycles_per_flop(
        self, version: Version, working_set: float
    ) -> float:
        miss = sweep_miss_rate(
            self.cache,
            version.stride1_fraction,
            working_set,
            degradation=version.cache_degradation,
        )
        return (
            (1.0 / self.flops_per_cycle + self.int_overhead_cpf)
            * version.loop_overhead_factor
            + version.divisions_per_flop * self.division_cycles
            + version.pow_calls_per_flop * self.pow_cycles
            + version.mem_refs_per_flop * miss * self.cache.miss_penalty_cycles
        )

    def _anchor_scale(self) -> float:
        """Rescaling factor pinning Version 5 at the *default* working set
        to the documented sustained rate.  Computed at the default (not the
        query's) working set so that working-set/cache-size sensitivity
        remains visible around the anchor."""
        if self.v5_target_mflops is None:
            return 1.0
        v5 = version_by_number(5)
        raw = (
            self.clock_hz
            / self._raw_cycles_per_flop(v5, DEFAULT_WORKING_SET)
            / 1e6
        )
        return raw / self.v5_target_mflops

    def cycles_per_flop(
        self, version: Version | int = 5, working_set: float = DEFAULT_WORKING_SET
    ) -> float:
        if isinstance(version, int):
            version = version_by_number(version)
        return self._raw_cycles_per_flop(version, working_set) * self._anchor_scale()

    def sustained_mflops(
        self, version: Version | int = 5, working_set: float = DEFAULT_WORKING_SET
    ) -> float:
        """Sustained MFLOPS on the application for a given code version."""
        return self.clock_hz / self.cycles_per_flop(version, working_set) / 1e6

    def time_for_flops(
        self,
        flops: float,
        version: Version | int = 5,
        working_set: float = DEFAULT_WORKING_SET,
    ) -> float:
        """Seconds to execute ``flops`` nominal flops."""
        return flops / (self.sustained_mflops(version, working_set) * 1e6)

    @property
    def peak_mflops(self) -> float:
        return self.clock_hz * self.flops_per_cycle / 1e6
