"""Reproduction benchmark: Figure 2: Single-processor execution time, Versions 1..7 (RS6000/560)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig02(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig02"),
        "Figure 2: Single-processor execution time, Versions 1..7 (RS6000/560)",
    )
