"""Reproduction benchmark: Figure 8: Communication optimization V5/V6/V7 (Euler; LACE)."""

from repro.experiments import run_experiment

from conftest import run_and_print


def test_fig08(benchmark):
    run_and_print(
        benchmark,
        lambda: run_experiment("fig08"),
        "Figure 8: Communication optimization V5/V6/V7 (Euler; LACE)",
    )
