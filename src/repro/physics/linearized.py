"""Inflow-excitation eigenfunctions from linearized compressible Euler.

The paper excites the inflow with eigenfunctions of the equations linearized
about the jet mean flow (taken from Scott et al. 1993).  That reference data
is not available, so — per the substitution policy in DESIGN.md — this module
computes the closest synthetic equivalent: a *discrete temporal eigenmode* of
the axisymmetric linearized compressible Euler equations about the parallel
base flow ``(rho(r), U(r), p = const)``.

For perturbations ``q'(r) exp(i (alpha x - omega t))`` the linearized system
is linear in ``omega``::

    omega rho' = alpha U rho' + alpha rho u' - (i/r) d(r rho v')/dr
    omega u'   = alpha U u'   - i U_r v' + (alpha / rho) p'
    omega v'   = alpha U v'   - (i / rho) dp'/dr
    omega p'   = alpha U p'   + gamma p alpha u' - i gamma p (1/r) d(r v')/dr

a standard dense eigenproblem ``omega q = M(alpha) q`` once the radial
derivatives are discretized.  Axis regularity for the axisymmetric (m = 0)
mode means ``v'`` is odd and ``rho', u', p'`` are even across ``r = 0``;
the derivative matrices encode that by ghost-point reflection.  The most
unstable Kelvin-Helmholtz mode (largest ``Im omega`` with phase speed
between the coflow and centerline velocities) supplies the eigenfunctions.

The axial wavenumber is chosen so the mode's real frequency approximates the
requested Strouhal number, using the thin-shear-layer phase-speed estimate
``c_ph ~ 0.6 U_c``.  A closed-form :class:`GaussianEigenmode` (shear-layer
bump) is provided both as a cheap default for the solver and as a fallback
when the eigensolve finds no unstable mode (e.g. very thick shear layers).
"""

from __future__ import annotations

import numpy as np

from .. import constants


def _radial_derivative(n: int, dr: float, parity: int) -> np.ndarray:
    """Second-order d/dr on the half-offset grid ``r_j = (j + 1/2) dr``.

    ``parity`` is +1 for fields even across the axis (ghost ``f[-1] = f[0]``)
    and -1 for odd fields (ghost ``f[-1] = -f[0]``).  The outer edge uses a
    one-sided second-order stencil.
    """
    D = np.zeros((n, n))
    for j in range(1, n - 1):
        D[j, j - 1] = -0.5
        D[j, j + 1] = 0.5
    # Axis-side row: central difference with the reflected ghost value.
    D[0, 1] = 0.5
    D[0, 0] = -0.5 * parity
    # Outer edge: one-sided.
    D[n - 1, n - 3] = 0.5
    D[n - 1, n - 2] = -2.0
    D[n - 1, n - 1] = 1.5
    return D / dr


class Eigenmode:
    """A radial eigenfunction set ``(rho', u', v', p')`` with metadata.

    ``evaluate(r)`` interpolates the complex eigenfunctions onto arbitrary
    radial stations (real and imaginary parts independently, linear).
    """

    def __init__(
        self,
        r: np.ndarray,
        rho_hat: np.ndarray,
        u_hat: np.ndarray,
        v_hat: np.ndarray,
        p_hat: np.ndarray,
        omega: complex,
        alpha: float,
    ) -> None:
        self.r = np.asarray(r, dtype=np.float64)
        self.rho_hat = np.asarray(rho_hat, dtype=np.complex128)
        self.u_hat = np.asarray(u_hat, dtype=np.complex128)
        self.v_hat = np.asarray(v_hat, dtype=np.complex128)
        self.p_hat = np.asarray(p_hat, dtype=np.complex128)
        self.omega = complex(omega)
        self.alpha = float(alpha)

    @property
    def growth_rate(self) -> float:
        """Temporal growth rate ``Im omega``."""
        return self.omega.imag

    @property
    def phase_speed(self) -> float:
        """Axial phase speed ``Re omega / alpha``."""
        return self.omega.real / self.alpha

    def _interp(self, field: np.ndarray, r: np.ndarray) -> np.ndarray:
        return np.interp(r, self.r, field.real) + 1j * np.interp(
            r, self.r, field.imag
        )

    def evaluate(self, r: np.ndarray):
        """Complex ``(rho', u', v', p')`` eigenfunctions at stations ``r``."""
        r = np.asarray(r, dtype=np.float64)
        return (
            self._interp(self.rho_hat, r),
            self._interp(self.u_hat, r),
            self._interp(self.v_hat, r),
            self._interp(self.p_hat, r),
        )


class GaussianEigenmode(Eigenmode):
    """Analytic shear-layer-bump eigenfunctions (documented substitution).

    The axial-velocity eigenfunction is a Gaussian centered on the shear
    layer at ``r = 1`` with width set by the momentum thickness; the radial
    velocity leads it by 90 degrees (as in a convected KH wave), the
    pressure perturbation is a fraction of the velocity one, and the density
    follows the isentropic relation ``rho' = gamma p'`` at the reference
    state.  These shapes carry the physically essential features for jet
    excitation — shear-layer localization and axis/far-field decay.
    """

    def __init__(self, theta: float = constants.MOMENTUM_THICKNESS) -> None:
        r = np.linspace(1e-3, 8.0, 400)
        width = max(4.0 * theta, 0.15)
        bump = np.exp(-(((r - 1.0) / width) ** 2))
        # Kill the tiny residual at the axis so v' -> 0 there (odd parity).
        v_shape = bump * (r / (1.0 + r))
        u_hat = bump.astype(np.complex128)
        v_hat = 0.5j * v_shape
        p_hat = 0.2 * bump.astype(np.complex128)
        rho_hat = constants.GAMMA * p_hat
        super().__init__(r, rho_hat, u_hat, v_hat, p_hat, omega=0.0, alpha=1.0)
        self.theta = theta


def _build_operator(
    r: np.ndarray,
    dr: float,
    rho: np.ndarray,
    U: np.ndarray,
    p0: float,
    alpha: float,
    gamma: float,
) -> np.ndarray:
    """Assemble the dense ``4n x 4n`` matrix M with ``omega q = M q``."""
    n = r.size
    D_even = _radial_derivative(n, dr, parity=+1)
    D_odd = _radial_derivative(n, dr, parity=-1)
    inv_r = np.diag(1.0 / r)
    # (1/r) d(r f)/dr for an odd field f:  D_odd f + f / r.
    div_odd = D_odd + inv_r

    dU = D_even @ U

    Z = np.zeros((n, n))
    I = np.eye(n)
    aU = np.diag(alpha * U)

    # Row blocks in the order (rho', u', v', p').
    row_rho = [aU, alpha * np.diag(rho), -1j * (div_odd @ np.diag(rho)), Z]
    row_u = [Z, aU, -1j * np.diag(dU), alpha * np.diag(1.0 / rho)]
    row_v = [Z, Z, aU, -1j * np.diag(1.0 / rho) @ D_even]
    row_p = [Z, gamma * p0 * alpha * I, -1j * gamma * p0 * div_odd, aU]

    M = np.block(
        [
            [b.astype(np.complex128) if b.dtype != np.complex128 else b for b in row]
            for row in (row_rho, row_u, row_v, row_p)
        ]
    )
    # Outer boundary: perturbations vanish (Dirichlet).  Zero the last row
    # of each block-row so the edge values stay decoupled at 0.
    for k in range(4):
        M[k * n + n - 1, :] = 0.0
    return M


def solve_temporal_mode(
    profile,
    strouhal: float = constants.STROUHAL,
    n_points: int = 120,
    r_max: float = 6.0,
    phase_speed_guess: float = 0.6,
) -> Eigenmode:
    """Most-unstable temporal KH eigenmode of the jet base flow.

    Parameters
    ----------
    profile:
        A :class:`repro.physics.jet.JetProfile`.
    strouhal:
        Target Strouhal number; sets the axial wavenumber via
        ``alpha = omega_target / (phase_speed_guess * U_c)`` with
        ``omega_target = pi St M``.
    n_points, r_max:
        Radial resolution/extent of the eigenproblem grid.

    Returns
    -------
    Eigenmode
        Normalized so ``max |u'| = 1`` with real positive peak.  Falls back
        to :class:`GaussianEigenmode` when no physically admissible unstable
        mode exists.
    """
    import scipy.linalg

    dr = r_max / n_points
    r = (np.arange(n_points) + 0.5) * dr
    rho, U, _v, p = profile.primitives(r)
    p0 = float(profile.pressure)
    omega_target = np.pi * strouhal * profile.mach
    c_guess = phase_speed_guess * profile.u_centerline
    alpha = omega_target / max(c_guess, 1e-9)

    M = _build_operator(r, dr, rho, U, p0, alpha, profile.gamma)
    w, V = scipy.linalg.eig(M)

    u_lo = min(profile.coflow, profile.u_centerline)
    u_hi = max(profile.coflow, profile.u_centerline)
    best = None
    for k in np.argsort(-w.imag):
        wk = w[k]
        if wk.imag <= 1e-8:
            break
        c_ph = wk.real / alpha
        if not (u_lo - 1e-9 < c_ph < u_hi + 1e-9):
            continue
        vec = V[:, k]
        u_hat = vec[n_points : 2 * n_points]
        peak = r[int(np.argmax(np.abs(u_hat)))]
        if 0.3 <= peak <= 2.5:  # shear-layer localized
            best = (wk, vec)
            break
    if best is None:
        return GaussianEigenmode(theta=profile.theta)

    omega, vec = best
    n = n_points
    rho_hat, u_hat, v_hat, p_hat = (
        vec[:n],
        vec[n : 2 * n],
        vec[2 * n : 3 * n],
        vec[3 * n :],
    )
    # Normalize: unit peak axial velocity with real positive phase.
    k_peak = int(np.argmax(np.abs(u_hat)))
    scale = 1.0 / u_hat[k_peak]
    return Eigenmode(
        r,
        rho_hat * scale,
        u_hat * scale,
        v_hat * scale,
        p_hat * scale,
        omega=omega,
        alpha=alpha,
    )
