"""Floating-point operation counts of this package's kernels.

The paper's Table 1 reports total FP operation counts (145,000 x 10^6 for
Navier-Stokes, 77,000 x 10^6 for Euler on the 250x100 grid for 5000 steps).
For the "measured" characterization mode we count *our* kernels the same
way: flops per cell per step, itemized per kernel from the vectorized
expressions (one count per arithmetic array operation; a division counts as
one flop, matching the nominal convention of the era's counters).

Our solver performs roughly half the paper's per-cell work — the original
fourth-order code carried additional smoothing/metric terms and computed in
a less factored form (e.g. its pre-V4 variant executed 5.5e9 divisions;
ours shares reciprocals aggressively).  The comparison is recorded in
EXPERIMENTS.md; the discrete-event figures use the paper's own Table-1
numbers so the simulated machines see the published workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants

#: Flops per cell for one inviscid flux evaluation (F and G together):
#: reciprocal (1), u, v (2), p (5), E+p (1), flux assembly (9).
INVISCID_FLUX = 18

#: Flops per cell for the viscous terms: primitives (9), six gradients
#: (~18), dilatation + five stress/heat components (~19), viscous flux
#: assembly and subtraction (~16).
VISCOUS_TERMS = 62

#: One-sided 2-4 difference + predictor/corrector update, per sweep
#: (4 variables x (4-op stencil + 3-op update) x 2 phases).
SWEEP_UPDATE = 56

#: Radial weight / source handling per r-sweep.
RADIAL_EXTRA = 14

#: Fourth-difference filter, both directions.
FILTER = 50

#: Boundary conditions, time-step logic, sponge — amortized per cell.
MISC = 10


@dataclass(frozen=True)
class OpCount:
    """Per-cell-per-step flops, split by kernel."""

    x_sweep: float
    r_sweep: float
    filter: float
    misc: float

    @property
    def per_cell_step(self) -> float:
        return self.x_sweep + self.r_sweep + self.filter + self.misc

    def total(
        self,
        nx: int = constants.PAPER_NX,
        nr: int = constants.PAPER_NR,
        steps: int = constants.PAPER_STEPS,
    ) -> float:
        """Total flops for a run (the Table-1 'Total Comp.' figure)."""
        return self.per_cell_step * nx * nr * steps


def navier_stokes_ops() -> OpCount:
    """Per-cell-step counts for the Navier-Stokes solver."""
    flux_ns = INVISCID_FLUX + VISCOUS_TERMS
    return OpCount(
        x_sweep=2 * flux_ns + SWEEP_UPDATE,
        r_sweep=2 * flux_ns + SWEEP_UPDATE + RADIAL_EXTRA,
        filter=FILTER,
        misc=MISC,
    )


def euler_ops() -> OpCount:
    """Per-cell-step counts for the Euler solver."""
    return OpCount(
        x_sweep=2 * INVISCID_FLUX + SWEEP_UPDATE,
        r_sweep=2 * INVISCID_FLUX + SWEEP_UPDATE + RADIAL_EXTRA,
        filter=FILTER,
        misc=MISC,
    )
