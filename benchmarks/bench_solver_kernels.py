"""Raw solver throughput: wall time per time step of this implementation.

Not a paper artifact — this measures the *reproduction's own* kernels
(vectorized numpy) so regressions in the numerics are caught, and gives the
basis for the "full Figure 1 run takes minutes, not Y-MP hours" claim in
the README.
"""

import pytest

from repro import jet_scenario


@pytest.mark.parametrize("viscous", [True, False], ids=["navier-stokes", "euler"])
def test_step_throughput(benchmark, viscous):
    sc = jet_scenario(nx=125, nr=50, viscous=viscous)
    sc.solver.run(2)  # warm the pipeline (dt cache, allocations)

    benchmark(sc.solver.step)


def test_paper_grid_step(benchmark):
    """One step at the paper's full 250x100 resolution."""
    sc = jet_scenario(nx=250, nr=100, viscous=True)
    sc.solver.run(2)
    benchmark(sc.solver.step)


def test_distributed_step_4ranks(benchmark):
    """One distributed step (4 ranks, real message passing) — measures the
    virtual-cluster overhead relative to the serial step."""
    from repro.parallel.runner import ParallelJetSolver

    sc = jet_scenario(nx=120, nr=50, viscous=True)

    def run_block():
        ParallelJetSolver(sc.state, sc.solver.config, nranks=4).run(5)

    benchmark.pedantic(run_block, rounds=3, iterations=1)
