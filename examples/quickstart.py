#!/usr/bin/env python3
"""Quickstart: simulate the excited supersonic jet and inspect the flow.

Runs the paper's Navier-Stokes jet configuration (Mach 1.5, Re 1.2e6,
Strouhal 1/8) at reduced resolution for a few hundred steps through the
``repro.api.run`` facade, prints bulk diagnostics, and renders the
axial-momentum field as an ASCII contour — the same quantity as the
paper's Figure 1.

Usage::

    python examples/quickstart.py [--nx 96] [--nr 40] [--steps 400]
                                  [--trace jet.trace.json]
"""

import argparse

import numpy as np

from repro import run
from repro.analysis.report import ascii_contour


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=96)
    ap.add_argument("--nr", type=int, default=40)
    ap.add_argument("--steps", type=int, default=400)
    ap.add_argument(
        "--trace",
        metavar="PATH",
        help="export a Chrome trace of the run (open in ui.perfetto.dev)",
    )
    args = ap.parse_args()

    print(f"Grid {args.nx}x{args.nr}, domain 50x5 jet radii, dt adaptive (CFL 0.5)")
    res = run(
        "jet",
        steps=args.steps,
        nx=args.nx,
        nr=args.nr,
        viscous=True,
        trace=args.trace,
    )
    st = res.state
    print(
        f"  {res.steps} steps to t={res.t:.2f}: "
        f"max|rho*u|={np.abs(st.axial_momentum).max():.4f}  "
        f"max|v|={np.abs(st.v).max():.4f}"
    )

    print()
    print(ascii_contour(st.axial_momentum, width=96, height=20,
                        title="Axial momentum rho*u (jet shear layer rolling up)"))
    print(f"\nWall time: {res.timings.wall_seconds:.2f}s "
          f"({res.timings.ms_per_step:.1f} ms/step)")
    if res.trace_path:
        print(f"Trace: {res.trace_path} ({len(res.trace.spans)} spans) — "
              "load it at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
