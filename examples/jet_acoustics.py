#!/usr/bin/env python3
"""Near-field pressure signals from the excited jet (the paper's motivation).

The paper's Section 1: "The radiated sound emanating from the jet can be
computed by solving the full (time-dependent) compressible Navier-Stokes
equations ... limiting the solution domain to the near field where the jet
is nonlinear and then using acoustic analogy to relate the far-field noise
to the near-field sources.  This technique requires obtaining the
time-dependent flow field."

This example produces exactly those near-field sources: pressure time
series at probe stations along the shear layer, their spectra on the
Strouhal axis, and the downstream development of the shear layer.

Usage::

    python examples/jet_acoustics.py [--steps 1500] [--nx 100] [--nr 40]
"""

import argparse

import numpy as np

from repro import jet_scenario
from repro.analysis.jetdiag import (
    ProbeRecorder,
    momentum_thickness,
    spectrum,
)
from repro.analysis.report import format_table


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=1500)
    ap.add_argument("--nx", type=int, default=100)
    ap.add_argument("--nr", type=int, default=40)
    args = ap.parse_args()

    sc = jet_scenario(nx=args.nx, nr=args.nr, viscous=True)
    stations = [(5.0, 1.2), (10.0, 1.2), (20.0, 1.5), (30.0, 2.0)]
    rec = ProbeRecorder.at_locations(sc.grid, stations)
    print(f"Running the excited jet for {args.steps} steps "
          f"(M=1.5, St=1/8, eps=1e-3) ...")
    sc.solver.run(args.steps, monitor=rec, monitor_every=1)

    skip = args.steps // 5  # drop the startup transient
    rows = []
    for k, (x, r) in enumerate(stations):
        p = rec.series("p", k)[skip:]
        St, amp = spectrum(p, rec.dt_mean, mach=1.5)
        k_peak = int(np.argmax(amp))
        rows.append(
            [
                f"({x:.0f}, {r:.1f})",
                f"{p.std():.2e}",
                f"{St[k_peak]:.3f}",
                f"{amp[k_peak]:.2e}",
            ]
        )
    print()
    print(format_table(
        ["probe (x, r)", "p' rms", "peak St", "peak amplitude"],
        rows,
        title="Near-field pressure fluctuations (forcing St = 0.125):",
    ))

    rows = []
    for i in range(5, sc.grid.nx - 5, sc.grid.nx // 8):
        rows.append([f"{sc.grid.x[i]:.1f}",
                     f"{momentum_thickness(sc.state, i):.3f}"])
    print()
    print(format_table(
        ["x (radii)", "momentum thickness"],
        rows,
        title="Shear-layer development:",
    ))


if __name__ == "__main__":
    main()
