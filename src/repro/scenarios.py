"""Canonical problem setups used by examples, tests and benchmarks.

``jet_scenario`` reproduces the paper's configuration: a Mach-1.5
axisymmetric jet excited at Strouhal number 1/8 on a 50 x 5 radii domain.
The verification scenarios (periodic advection, acoustic pulse, shock tube)
exist to validate the numerics against known solutions; they run the same
solver in planar/periodic modes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import constants
from .grid import Grid
from .numerics.boundary import BoundaryConditions, Sponge
from .numerics.solver import (
    CompressibleSolver,
    EulerSolver,
    NavierStokesSolver,
    SolverConfig,
)
from .physics.jet import InflowExcitation, JetProfile
from .physics.state import FlowState


@dataclass
class Scenario:
    """A ready-to-run bundle of grid, initial state, and solver."""

    grid: Grid
    state: FlowState
    solver: CompressibleSolver
    name: str = ""

    def run(self, steps: int, **kw):
        """Run this scenario through :func:`repro.api.run` (serial by
        default; pass ``nprocs=``/``platform=``/``trace=`` as usual)."""
        from .api import run

        return run(self, steps=steps, **kw)


def jet_initial_state(grid: Grid, profile: JetProfile) -> FlowState:
    """Initial field: the inflow mean profile swept downstream unchanged.

    This is the standard start for time-accurate jet simulations — the
    excitation then grows Kelvin-Helmholtz structures on top of it.
    """
    rho, u, v, p = profile.primitives(grid.r)
    return FlowState.from_primitive(
        grid,
        np.broadcast_to(rho[None, :], grid.shape),
        np.broadcast_to(u[None, :], grid.shape),
        np.broadcast_to(v[None, :], grid.shape),
        np.broadcast_to(p[None, :], grid.shape),
        gamma=profile.gamma,
    )


def jet_scenario(
    nx: int = 125,
    nr: int = 50,
    viscous: bool = True,
    mach: float = constants.JET_MACH,
    reynolds: float = constants.REYNOLDS,
    theta: float = constants.MOMENTUM_THICKNESS,
    strouhal: float = constants.STROUHAL,
    epsilon: float = constants.EXCITATION_LEVEL,
    use_stability_mode: bool = False,
    cfl: float = 0.5,
    sponge: Sponge | None = None,
) -> Scenario:
    """The paper's excited supersonic jet (Navier-Stokes or Euler).

    Defaults to half the paper's 250 x 100 resolution so examples run in
    seconds; pass ``nx=250, nr=100`` for the full configuration.
    ``use_stability_mode=True`` solves the linearized eigenproblem for the
    inflow eigenfunctions instead of the analytic Gaussian substitute.
    """
    grid = Grid(nx=nx, nr=nr)
    profile = JetProfile(mach=mach, theta=theta)
    mode = None
    if use_stability_mode:
        from .physics.linearized import solve_temporal_mode

        mode = solve_temporal_mode(profile, strouhal=strouhal)
    excitation = InflowExcitation(
        profile, strouhal=strouhal, epsilon=epsilon, mode=mode
    )
    bc = BoundaryConditions(
        inflow=excitation,
        characteristic_outflow=True,
        sponge=sponge if sponge is not None else Sponge(),
    )
    config = SolverConfig(
        viscous=viscous,
        mach=mach,
        reynolds=reynolds,
        cfl=cfl,
        boundary=bc,
    )
    state = jet_initial_state(grid, profile)
    cls = NavierStokesSolver if viscous else EulerSolver
    return Scenario(
        grid, state, cls(state, config), name="jet-ns" if viscous else "jet-euler"
    )


def periodic_advection_scenario(
    n: int = 32, mach: float = 0.5, amplitude: float = 1e-3
) -> Scenario:
    """Planar doubly-periodic advection of a smooth entropy/density wave.

    A uniform flow ``(u, v) = (M, 0)`` carries a sinusoidal density
    perturbation at constant pressure: the exact solution is pure advection,
    used for order-of-accuracy and conservation tests.
    """
    grid = Grid(nx=n, nr=n, length_x=1.0, length_r=1.0)
    # With wrap ghosts the true period is nx * dx (the nominal domain ends
    # one spacing short of a full wrap), so the wave uses that wavelength.
    x = grid.xmesh()
    wavelength = grid.nx * grid.dx
    rho = 1.0 + amplitude * np.sin(2.0 * np.pi * x / wavelength)
    p = 1.0 / constants.GAMMA
    state = FlowState.from_primitive(grid, rho, mach, 0.0, p)
    config = SolverConfig(
        viscous=False,
        axisymmetric=False,
        periodic_x=True,
        periodic_r=True,
        boundary=None,
        cfl=0.4,
    )
    return Scenario(grid, state, EulerSolver(state, config), name="advection")


def acoustic_pulse_scenario(n: int = 64, amplitude: float = 1e-4) -> Scenario:
    """Planar periodic acoustic pulse for linear-wave propagation checks."""
    grid = Grid(nx=n, nr=n, length_x=1.0, length_r=1.0)
    x, r = grid.xmesh(), grid.rmesh()
    gauss = np.exp(-(((x - 0.5) ** 2 + (r - 0.5) ** 2) / 0.01))
    p = 1.0 / constants.GAMMA * (1.0 + amplitude * gauss)
    rho = (constants.GAMMA * p) ** (1.0 / constants.GAMMA)
    state = FlowState.from_primitive(grid, rho, 0.0, 0.0, p)
    config = SolverConfig(
        viscous=False,
        axisymmetric=False,
        periodic_x=True,
        periodic_r=True,
        boundary=None,
        cfl=0.4,
    )
    return Scenario(grid, state, EulerSolver(state, config), name="acoustic")


def shock_tube_scenario(nx: int = 200, nr: int = 8, mu: float = 2e-3) -> Scenario:
    """Planar Sod-like shock tube run axially (radial direction trivial).

    The 2-4 MacCormack scheme is not shock-capturing by itself; a modest
    physical viscosity regularizes the discontinuities, which is enough to
    check wave speeds and the Rankine-Hugoniot plateau values.
    """
    grid = Grid(nx=nx, nr=nr, length_x=1.0, length_r=0.1)
    x = grid.xmesh()
    left = x < 0.5
    rho = np.where(left, 1.0, 0.125)
    p = np.where(left, 1.0, 0.1)
    state = FlowState.from_primitive(grid, rho, 0.0, 0.0, p)
    config = SolverConfig(
        viscous=True,
        mu=mu,
        axisymmetric=False,
        periodic_x=False,
        periodic_r=True,
        boundary=None,
        cfl=0.3,
    )
    return Scenario(grid, state, NavierStokesSolver(state, config), name="sod")


def _jet_euler(**kw) -> Scenario:
    return jet_scenario(viscous=False, **kw)


#: Named constructors accepted by :func:`repro.api.run` (and the CLI).
SCENARIOS = {
    "jet": jet_scenario,
    "jet-ns": jet_scenario,
    "jet-euler": _jet_euler,
    "advection": periodic_advection_scenario,
    "acoustic": acoustic_pulse_scenario,
    "sod": shock_tube_scenario,
    "shock-tube": shock_tube_scenario,
}


def scenario_by_name(name: str, **kw) -> Scenario:
    """Build a registered scenario; ``kw`` goes to its constructor."""
    try:
        make = SCENARIOS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    return make(**kw)
