"""Typed run requests: serialization, fingerprints, and the run() shim."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import api
from repro.request import (
    ExecutionConfig,
    ObservabilityConfig,
    ResilienceConfig,
    RunRequest,
)
from repro.scenarios import shock_tube_scenario


class TestRoundTrip:
    def test_to_from_dict_identity(self):
        req = RunRequest.from_run_args(
            "sod", steps=25, nprocs=2, substrate="virtual",
            faults="lossy-ethernet", fault_seed=7, checkpoint_every=5,
        )
        wire = req.to_dict()
        back = RunRequest.from_dict(wire)
        assert back == req
        assert back.fingerprint() == req.fingerprint()

    def test_wire_is_json_serializable(self):
        req = RunRequest.from_run_args("jet", steps=10, nx=24, nr=12)
        wire = json.loads(json.dumps(req.to_dict()))
        assert RunRequest.from_dict(wire).fingerprint() == req.fingerprint()

    def test_unknown_schema_rejected(self):
        wire = RunRequest.from_run_args("sod", steps=5).to_dict()
        wire["schema"] = "repro.request/99"
        with pytest.raises(ValueError, match="schema"):
            RunRequest.from_dict(wire)

    def test_adhoc_scenario_object_not_serializable(self):
        req = RunRequest.from_run_args(shock_tube_scenario(nx=32), steps=5)
        with pytest.raises(ValueError, match="scenario"):
            req.to_dict()

    def test_fingerprint_stable_across_processes(self):
        req = RunRequest.from_run_args("sod", steps=25, nprocs=2)
        code = (
            "import json, sys\n"
            "from repro.request import RunRequest\n"
            "req = RunRequest.from_dict(json.loads(sys.argv[1]))\n"
            "print(req.fingerprint())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code, json.dumps(req.to_dict())],
            capture_output=True, text=True, env=os.environ.copy(),
            check=True,
        )
        assert out.stdout.strip() == req.fingerprint()


class TestFingerprint:
    def test_covers_physics_and_execution(self):
        base = RunRequest.from_run_args("sod", steps=25)
        assert base.fingerprint() != RunRequest.from_run_args(
            "sod", steps=26).fingerprint()
        assert base.fingerprint() != RunRequest.from_run_args(
            "jet", steps=25).fingerprint()
        assert base.fingerprint() != RunRequest.from_run_args(
            "sod", steps=25, nprocs=2).fingerprint()

    def test_excludes_observability_and_timeout(self):
        base = RunRequest.from_run_args("sod", steps=25)
        noisy = RunRequest.from_run_args(
            "sod", steps=25, metrics=True, profile=True, ledger=True,
            timeout=9.0,
        )
        assert noisy.fingerprint() == base.fingerprint()

    def test_serial_ignores_parallel_only_knobs(self):
        a = RunRequest.from_run_args("sod", steps=25, substrate="virtual")
        b = RunRequest.from_run_args("sod", steps=25, substrate="process")
        assert a.fingerprint() == b.fingerprint()

    def test_parallel_distinguishes_substrate(self):
        a = RunRequest.from_run_args(
            "sod", steps=25, nprocs=2, substrate="virtual")
        b = RunRequest.from_run_args(
            "sod", steps=25, nprocs=2, substrate="process")
        assert a.fingerprint() != b.fingerprint()

    def test_fault_seed_in_identity(self):
        a = RunRequest.from_run_args(
            "sod", steps=25, nprocs=2, faults="lossy-ethernet", fault_seed=1)
        b = RunRequest.from_run_args(
            "sod", steps=25, nprocs=2, faults="lossy-ethernet", fault_seed=2)
        assert a.fingerprint() != b.fingerprint()

    def test_replace_changes_fingerprint(self):
        req = RunRequest.from_run_args("sod", steps=25)
        bumped = req.replace(steps=50)
        assert bumped.steps == 50
        assert bumped.fingerprint() != req.fingerprint()


class TestRunShim:
    def test_run_equals_run_request(self):
        direct = api.run("sod", steps=30)
        via_req = api.run_request(RunRequest.from_run_args("sod", steps=30))
        assert np.array_equal(direct.state.rho, via_req.state.rho)
        assert np.array_equal(direct.state.u, via_req.state.u)
        assert direct.t == via_req.t

    def test_result_carries_request(self):
        res = api.run("sod", steps=10)
        assert isinstance(res.request, RunRequest)
        assert res.request.scenario == "sod"
        assert res.request.fingerprint() == RunRequest.from_run_args(
            "sod", steps=10).fingerprint()

    def test_report_fingerprint_is_request_fingerprint(self):
        res = api.run("sod", steps=10, metrics=True, ledger=False)
        assert res.perf is not None
        assert res.perf.fingerprint == res.request.fingerprint()

    def test_config_dataclass_defaults_match_run_signature(self):
        ex, rz, ob = ExecutionConfig(), ResilienceConfig(), ObservabilityConfig()
        assert (ex.nprocs, ex.substrate, ex.decomposition, ex.version) == (
            1, "virtual", "axial", 7)
        assert (rz.checkpoint_every, rz.max_restarts) == (0, 2)
        assert (ob.trace, ob.metrics, ob.profile, ob.ledger) == (
            None, None, False, None)


class TestDataDir:
    def test_default_ledger_respects_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        assert api.DEFAULT_LEDGER == str(tmp_path / "BENCH_runs.jsonl")

    def test_metrics_ledger_lands_in_data_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        res = api.run("sod", steps=10, metrics=True, ledger=True)
        ledger = tmp_path / "BENCH_runs.jsonl"
        assert ledger.exists()
        entry = json.loads(ledger.read_text().splitlines()[-1])
        assert entry["fingerprint"] == res.request.fingerprint()

    def test_default_is_repo_anchored(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATA_DIR", raising=False)
        from repro.config import data_dir, repo_root

        assert data_dir() == repo_root() / "benchmarks" / "output"
