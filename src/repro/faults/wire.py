"""Self-describing wire frames for the fault-tolerant transport.

When a :class:`~repro.faults.comm.FaultyComm` has faults enabled, every
payload travels as a *frame*: a flat ``uint8`` array carrying a fixed
header (magic, sequence number, byte count, dtype, shape) followed by the
raw payload bytes.  The header lets the receiver

* restore ordering and discard duplicates (the sequence number),
* detect truncated frames (declared vs actual byte count), and
* reconstruct the exact numpy array (dtype + shape), bitwise-identical to
  what was sent.

Frames are deliberately numpy arrays so they flow through any
:class:`~repro.msglib.api.Communicator` unchanged — the virtual cluster's
mailboxes and the MPI adapter both ship plain arrays.
"""

from __future__ import annotations

import math
import struct

import numpy as np

#: magic (4s) | version (B) | seq (I) | payload bytes (Q) | dtype (8s) |
#: ndim (B) | shape (4I)
_HEADER = struct.Struct("<4sBIQ8sB4I")
MAGIC = b"RFRM"
HEADER_BYTES = _HEADER.size
_MAX_NDIM = 4


def pack_frame(seq: int, array: np.ndarray) -> np.ndarray:
    """Wrap ``array`` into a sequence-numbered ``uint8`` frame."""
    a = np.ascontiguousarray(array)
    if np.ndim(array) == 0:
        a = a.reshape(())  # ascontiguousarray promotes 0-d to 1-d; undo
    if a.ndim > _MAX_NDIM:
        raise ValueError(f"cannot frame a {a.ndim}-D payload (max {_MAX_NDIM})")
    dtype = a.dtype.str.encode()
    if len(dtype) > 8:
        raise ValueError(f"dtype descriptor {a.dtype.str!r} too long to frame")
    shape = list(a.shape) + [0] * (_MAX_NDIM - a.ndim)
    header = _HEADER.pack(
        MAGIC, 1, seq & 0xFFFFFFFF, a.nbytes, dtype.ljust(8, b"\0"),
        a.ndim, *shape,
    )
    frame = np.empty(HEADER_BYTES + a.nbytes, dtype=np.uint8)
    frame[:HEADER_BYTES] = np.frombuffer(header, dtype=np.uint8)
    frame[HEADER_BYTES:] = np.frombuffer(a.tobytes(), dtype=np.uint8)
    return frame


def unpack_frame(frame: np.ndarray) -> tuple[int, np.ndarray] | None:
    """``(seq, payload)`` from a frame, or ``None`` if it is corrupt.

    Any inconsistency — short frame, bad magic, length mismatch against
    the declared byte count, impossible dtype/shape — returns ``None``
    rather than raising: corrupt frames are a *modelled* fault and the
    transport handles them by waiting for the retransmission.
    """
    buf = np.ascontiguousarray(frame, dtype=np.uint8).tobytes()
    if len(buf) < HEADER_BYTES:
        return None
    magic, version, seq, nbytes, dtype_s, ndim, *shape = _HEADER.unpack_from(buf)
    if magic != MAGIC or version != 1 or ndim > _MAX_NDIM:
        return None
    if len(buf) - HEADER_BYTES != nbytes:
        return None
    try:
        dtype = np.dtype(dtype_s.rstrip(b"\0").decode())
    except (TypeError, ValueError, UnicodeDecodeError):
        return None
    dims = tuple(shape[:ndim])
    if dtype.itemsize * math.prod(dims) != nbytes:
        return None
    payload = np.frombuffer(buf, dtype=dtype, offset=HEADER_BYTES)
    return seq, payload.reshape(dims).copy()


def truncate_frame(frame: np.ndarray, fraction: float) -> np.ndarray:
    """A copy of ``frame`` with its tail cut off (a corrupt transmission).

    ``fraction`` in ``(0, 1]`` selects how much of the frame to cut; at
    least one byte is always removed so the receiver's length check fires.
    """
    cut = max(1, int(len(frame) * min(max(fraction, 0.0), 1.0)))
    return frame[: max(len(frame) - cut, 0)].copy()
