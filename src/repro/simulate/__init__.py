"""Discrete-event performance simulation of the SPMD application.

The pipeline:

1. :mod:`repro.simulate.workload` describes the application's per-step
   computation and communication (Table 1 characteristics), either taken
   from the paper's measured numbers or derived from this package's own
   instrumented distributed solver.
2. :mod:`repro.simulate.costmodel` converts compute segments to seconds on
   a platform's CPU model for a given code version.
3. :mod:`repro.simulate.program` builds per-rank event programs (the
   Version 5/6/7 communication shapes).
4. :mod:`repro.simulate.machine` runs them over a platform's network model
   with a message-library cost model on the :mod:`repro.simulate.engine`
   event engine, producing per-rank busy / non-overlapped-communication
   timelines (:mod:`repro.simulate.timeline`) — the paper's execution-time
   split.
5. :mod:`repro.simulate.sharedmem` models the Cray Y-MP (loop-level
   parallelism over the vector CPU model; no message passing).
"""

from .engine import Engine, Event, Resource, Delay, Acquire, Release, Wait, Trigger
from .workload import Application, NAVIER_STOKES, EULER, Workload
from .costmodel import CostModel
from .machine import SimulatedMachine, RunResult
from .sharedmem import SharedMemoryMachine
from .analytic import AnalyticEstimate, analytic_execution_time, analytic_saturation_procs

__all__ = [
    "Engine",
    "Event",
    "Resource",
    "Delay",
    "Acquire",
    "Release",
    "Wait",
    "Trigger",
    "Application",
    "NAVIER_STOKES",
    "EULER",
    "Workload",
    "CostModel",
    "SimulatedMachine",
    "RunResult",
    "SharedMemoryMachine",
    "AnalyticEstimate",
    "analytic_execution_time",
    "analytic_saturation_procs",
]
