"""Analysis and reporting: metrics, Table 1-2 generators, Figure 2-13
series generators, and ASCII rendering."""

from .metrics import (
    efficiency,
    flops_per_byte,
    flops_per_startup,
    minimum_location,
    speedup,
)
from .report import ascii_contour, format_table, render_gantt, render_series
from .jetdiag import (
    ProbeRecorder,
    dominant_strouhal,
    momentum_thickness,
    spectrum,
    vorticity,
)
from .tables import table1, table2
from .figures import (
    FigureResult,
    fig02_versions,
    fig03_fig04_lace,
    fig05_fig06_components,
    fig07_fig08_comm_versions,
    fig09_fig10_platforms,
    fig11_fig12_libraries,
    fig13_load_balance,
)

__all__ = [
    "speedup",
    "efficiency",
    "flops_per_byte",
    "flops_per_startup",
    "minimum_location",
    "format_table",
    "render_series",
    "ascii_contour",
    "render_gantt",
    "ProbeRecorder",
    "spectrum",
    "dominant_strouhal",
    "momentum_thickness",
    "vorticity",
    "table1",
    "table2",
    "FigureResult",
    "fig02_versions",
    "fig03_fig04_lace",
    "fig05_fig06_components",
    "fig07_fig08_comm_versions",
    "fig09_fig10_platforms",
    "fig11_fig12_libraries",
    "fig13_load_balance",
]
