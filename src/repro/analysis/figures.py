"""Series generators for every figure of the paper's evaluation.

Each function returns a :class:`FigureResult` whose series can be printed
with :meth:`FigureResult.render` — the same curves the paper plots on its
log-log axes.  Figure 1 (the excited-jet axial-momentum contours) is the
only one produced by actually running the solver; see
``repro.experiments.runners.run_fig01``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines.platforms import (
    CRAY_T3D,
    CRAY_YMP,
    IBM_SP,
    IBM_SP_PVME,
    LACE_560,
    LACE_560_ETHERNET,
    LACE_590,
    Platform,
)
from ..parallel.versions import VERSIONS
from ..simulate.machine import SimulatedMachine
from ..simulate.sharedmem import SharedMemoryMachine
from ..simulate.workload import EULER, NAVIER_STOKES, Application
from .report import format_table, render_series

#: Processor grid used by the scaling figures (the paper runs up to 16;
#: the Y-MP up to 8).
PROC_GRID = (1, 2, 4, 6, 8, 10, 12, 14, 16)

#: Steps simulated per run (scaled to the full 5000; the step pattern is
#: periodic, verified by the test suite).
STEPS_WINDOW = 30


@dataclass
class FigureResult:
    """Series data for one paper figure."""

    figure_id: str
    title: str
    xs: list[float]
    series: dict[str, list[float]]
    xlabel: str = "Number of Processors"
    ylabel: str = "Execution Time (sec)"
    loglog: bool = True
    notes: str = ""

    def to_csv(self, path: str) -> None:
        """Write the series as CSV (x column + one column per series) for
        external plotting tools."""
        import csv

        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow([self.xlabel] + list(self.series))
            for i, x in enumerate(self.xs):
                w.writerow([x] + [self.series[k][i] for k in self.series])

    def render(self, width: int = 72) -> str:
        chart = render_series(
            self.xs,
            self.series,
            title=f"{self.figure_id}: {self.title}",
            xlabel=self.xlabel,
            ylabel=self.ylabel,
            loglog=self.loglog,
            width=width,
        )
        headers = [self.xlabel] + list(self.series)
        rows = [
            [x] + [f"{self.series[k][i]:.1f}" for k in self.series]
            for i, x in enumerate(self.xs)
        ]
        table = format_table(headers, rows)
        out = chart + "\n\n" + table
        if self.notes:
            out += "\n\n" + self.notes
        return out


def _exec_series(
    platform: Platform,
    app: Application,
    procs=PROC_GRID,
    version: int = 5,
    quantity: str = "execution",
) -> list[float]:
    out = []
    for p in procs:
        r = SimulatedMachine(platform, p, version=version).run(
            app, steps_window=STEPS_WINDOW
        )
        if quantity == "execution":
            out.append(r.execution_time)
        elif quantity == "busy":
            out.append(r.busy_time)
        elif quantity == "comm":
            out.append(r.comm_time)
        else:
            raise ValueError(quantity)
    return out


# ---------------------------------------------------------------------------
# Figure 2: single-processor optimization versions
# ---------------------------------------------------------------------------


def fig02_versions(procs_cpu=None) -> FigureResult:
    """Execution time on a single RS6000/560 for Versions 1..5 (+6, 7).

    The paper's Figure 2: ~16,000 s for the original Navier-Stokes code
    dropping to ~9,000 s for Version 5 (9.3 -> 16.0 MFLOPS)."""
    cpu = (procs_cpu or LACE_560).cpu
    versions = sorted(VERSIONS)
    series: dict[str, list[float]] = {"Navier-Stokes": [], "Euler": []}
    for app, key in ((NAVIER_STOKES, "Navier-Stokes"), (EULER, "Euler")):
        for v in versions:
            t = cpu.time_for_flops(app.total_flops, v)
            series[key].append(t)
    notes_rows = [
        [f"V{v}", f"{cpu.sustained_mflops(v):.1f}", VERSIONS[v].description]
        for v in versions
    ]
    notes = format_table(
        ["Version", "MFLOPS (560)", "Optimization"],
        notes_rows,
        title="Sustained single-processor rates:",
    )
    return FigureResult(
        figure_id="Figure 2",
        title="Execution time on a single processor (RS6000/560)",
        xs=[float(v) for v in versions],
        series=series,
        xlabel="Version",
        loglog=False,
        notes=notes,
    )


# ---------------------------------------------------------------------------
# Figures 3/4: LACE networks
# ---------------------------------------------------------------------------


def fig03_fig04_lace(app: Application, procs=PROC_GRID) -> FigureResult:
    """Execution time on LACE under ALLNODE-F / ALLNODE-S / Ethernet."""
    fid = "Figure 3" if app is NAVIER_STOKES else "Figure 4"
    series = {
        "ALLNODE-F": _exec_series(LACE_590, app, procs),
        "ALLNODE-S": _exec_series(LACE_560, app, procs),
        "Ethernet": _exec_series(LACE_560_ETHERNET, app, procs),
    }
    return FigureResult(
        figure_id=fid,
        title=f"{app.name} execution time on LACE",
        xs=list(procs),
        series=series,
    )


# ---------------------------------------------------------------------------
# Figures 5/6: busy vs non-overlapped communication
# ---------------------------------------------------------------------------


def fig05_fig06_components(app: Application, procs=PROC_GRID) -> FigureResult:
    """The execution-time split on LACE (paper Figures 5 and 6)."""
    fid = "Figure 5" if app is NAVIER_STOKES else "Figure 6"
    series = {
        "LACE/590 busy": _exec_series(LACE_590, app, procs, quantity="busy"),
        "ALLNODE-F comm": _exec_series(LACE_590, app, procs, quantity="comm"),
        "LACE/560 busy": _exec_series(LACE_560, app, procs, quantity="busy"),
        "ALLNODE-S comm": _exec_series(LACE_560, app, procs, quantity="comm"),
        "Ethernet comm": _exec_series(
            LACE_560_ETHERNET, app, procs, quantity="comm"
        ),
    }
    return FigureResult(
        figure_id=fid,
        title=f"Components of execution time ({app.name}; LACE)",
        xs=list(procs),
        series=series,
        ylabel="Time (sec)",
    )


# ---------------------------------------------------------------------------
# Figures 7/8: communication-optimization versions
# ---------------------------------------------------------------------------


def fig07_fig08_comm_versions(app: Application, procs=PROC_GRID) -> FigureResult:
    """Versions 5/6/7 on ALLNODE-S and Ethernet (paper Figures 7 and 8)."""
    fid = "Figure 7" if app is NAVIER_STOKES else "Figure 8"
    series = {}
    for v in (5, 6, 7):
        series[f"V{v} ALLNODE-S"] = _exec_series(LACE_560, app, procs, version=v)
        series[f"V{v} Ethernet"] = _exec_series(
            LACE_560_ETHERNET, app, procs, version=v
        )
    return FigureResult(
        figure_id=fid,
        title=f"Communication optimization ({app.name}; LACE)",
        xs=list(procs),
        series=series,
    )


# ---------------------------------------------------------------------------
# Figures 9/10: all platforms
# ---------------------------------------------------------------------------


def fig09_fig10_platforms(app: Application, procs=PROC_GRID) -> FigureResult:
    """Execution time across the four platforms (paper Figures 9 and 10)."""
    fid = "Figure 9" if app is NAVIER_STOKES else "Figure 10"
    ymp_procs = [p for p in procs if p <= CRAY_YMP.max_procs]
    ymp = [
        SharedMemoryMachine(CRAY_YMP, p).run(app).execution_time for p in ymp_procs
    ]
    # Pad the Y-MP series (max 8 CPUs) with its last value marker omitted.
    series = {
        "Cray Y-MP": ymp + [float("nan")] * (len(procs) - len(ymp_procs)),
        "IBM SP (MPL)": _exec_series(IBM_SP, app, procs),
        "ALLNODE-S": _exec_series(LACE_560, app, procs),
        "Cray T3D": _exec_series(CRAY_T3D, app, procs),
        "ALLNODE-F": _exec_series(LACE_590, app, procs),
    }
    # Replace NaN padding with None-safe values for rendering: drop them.
    series["Cray Y-MP"] = [
        v if v == v else 0.0 for v in series["Cray Y-MP"]
    ]  # 0 values are skipped by the log renderer
    return FigureResult(
        figure_id=fid,
        title=f"Execution time of {app.name} on computing platforms",
        xs=list(procs),
        series=series,
    )


# ---------------------------------------------------------------------------
# Figures 11/12: MPL vs PVMe on the SP
# ---------------------------------------------------------------------------


def fig11_fig12_libraries(app: Application, procs=PROC_GRID) -> FigureResult:
    """MPL vs PVMe busy and non-overlapped comm (paper Figures 11 and 12)."""
    fid = "Figure 11" if app is NAVIER_STOKES else "Figure 12"
    series = {
        "busy (MPL)": _exec_series(IBM_SP, app, procs, quantity="busy"),
        "busy (PVMe)": _exec_series(IBM_SP_PVME, app, procs, quantity="busy"),
        "comm (MPL)": _exec_series(IBM_SP, app, procs, quantity="comm"),
        "comm (PVMe)": _exec_series(IBM_SP_PVME, app, procs, quantity="comm"),
    }
    return FigureResult(
        figure_id=fid,
        title=f"Comparison of MPL and PVMe ({app.name}; IBM SP)",
        xs=list(procs),
        series=series,
        ylabel="Time (sec)",
    )


# ---------------------------------------------------------------------------
# Figure 13: load balance
# ---------------------------------------------------------------------------


def fig13_load_balance(
    app: Application = NAVIER_STOKES, nprocs: int = 16
) -> FigureResult:
    """Per-processor busy times on the SP (paper Figure 13)."""
    r = SimulatedMachine(IBM_SP, nprocs).run(app, steps_window=STEPS_WINDOW)
    series = {"busy time": r.per_rank_busy}
    return FigureResult(
        figure_id="Figure 13",
        title=f"Processor busy times ({app.name}; IBM SP, {nprocs} procs)",
        xs=list(range(nprocs)),
        series=series,
        xlabel="Processor Number",
        ylabel="Processor busy time (sec)",
        loglog=False,
    )
