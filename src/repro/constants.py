"""Physical constants and the canonical paper configuration.

All quantities in this reproduction are nondimensional unless stated
otherwise.  The solver nondimensionalizes by the jet centerline state at
inflow: lengths by the jet radius ``r_j``, velocities by the centerline speed
of sound ``c_c`` (so the centerline velocity is the jet Mach number),
density by the centerline density, and pressure by ``rho_c * c_c**2``.

The ``PAPER_*`` constants record the exact numbers the paper reports so the
experiment harness and the workload model can compare against them; they are
never used to *produce* simulated results (see DESIGN.md section 6).
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Gas properties (perfect gas, air).
# ---------------------------------------------------------------------------
GAMMA: float = 1.4
"""Ratio of specific heats for air."""

PRANDTL: float = 0.72
"""Prandtl number used for the heat-flux model."""

# ---------------------------------------------------------------------------
# Jet configuration of the paper (Section 3).
# ---------------------------------------------------------------------------
JET_MACH: float = 1.5
"""Jet centerline Mach number."""

REYNOLDS: float = 1.2e6
"""Reynolds number based on jet diameter."""

STROUHAL: float = 0.125
"""Excitation Strouhal number St = 1/8."""

MOMENTUM_THICKNESS: float = 0.10
"""Shear-layer momentum thickness theta (in jet radii).

The scanned paper text garbles the exact value; published companion papers
(Hayder, Turkel & Mankbadi 1993; Mankbadi et al. 1994) use thin shear layers
with theta/r_j of order 0.05-0.15 for this configuration.  The value only
sets the tanh profile steepness and is exposed as a parameter everywhere.
"""

TEMPERATURE_RATIO: float = 2.0
"""Centerline-to-freestream temperature ratio T_c / T_inf.

The paper states ``T_inf/T_c = 1/2``.
"""

EXCITATION_LEVEL: float = 1e-3
"""Default excitation amplitude epsilon for the inflow forcing."""

DOMAIN_LENGTH_X: float = 50.0
"""Axial domain extent in jet radii (paper: 50 radii)."""

DOMAIN_LENGTH_R: float = 5.0
"""Radial domain extent in jet radii (paper: 5 radii)."""

# ---------------------------------------------------------------------------
# Canonical run size (Section 3 / Section 6).
# ---------------------------------------------------------------------------
PAPER_NX: int = 250
PAPER_NR: int = 100
PAPER_STEPS: int = 5000
PAPER_STEPS_FIGURE1: int = 16000

# ---------------------------------------------------------------------------
# Paper-reported measurements (Tables 1-2, Figure 2), for comparison only.
# ---------------------------------------------------------------------------
PAPER_TOTAL_FLOPS_NS: float = 145_000e6
"""Total floating-point operations for Navier-Stokes (Table 1)."""

PAPER_TOTAL_FLOPS_EULER: float = 77_000e6
"""Total floating-point operations for Euler (Table 1)."""

PAPER_STARTUPS_NS: int = 80_000
"""Per-processor communication startups for Navier-Stokes (Table 1)."""

PAPER_STARTUPS_EULER: int = 60_000
"""Per-processor communication startups for Euler (Table 1)."""

PAPER_VOLUME_NS_MB: float = 125.0
"""Per-processor communication volume in MB for Navier-Stokes (Table 1)."""

PAPER_VOLUME_EULER_MB: float = 95.0
"""Per-processor communication volume in MB for Euler (Table 1)."""

PAPER_MFLOPS_V1_560: float = 9.3
"""RS6000/560 sustained MFLOPS before optimization (Section 6)."""

PAPER_MFLOPS_V5_560: float = 16.0
"""RS6000/560 sustained MFLOPS after all optimizations (Section 6)."""

PAPER_DIVISIONS_BEFORE: float = 5.5e9
"""Division count before the division->multiplication rewrite (Section 6)."""

PAPER_DIVISIONS_AFTER: float = 2.0e9
"""Division count after the rewrite (Section 6)."""

MB: float = 1e6
"""Bytes per megabyte as the paper uses it (decimal MB)."""
