"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import jet_scenario, periodic_advection_scenario
from repro.grid import Grid
from repro.physics.jet import JetProfile
from repro.physics.state import FlowState


def pytest_addoption(parser):
    parser.addoption(
        "--chaos-seed",
        default=None,
        help="seed for the fault-injection chaos suite: an int, or "
             "'random' to draw one (it is printed so any failure can be "
             "replayed with --chaos-seed=<printed value>)",
    )


@pytest.fixture(scope="session")
def chaos_seed(request) -> int:
    """The chaos suite's fault-plan seed — printed for reproducibility."""
    raw = request.config.getoption("--chaos-seed")
    if raw is None:
        seed = 11
    elif raw == "random":
        seed = random.SystemRandom().randrange(2**31)
    else:
        seed = int(raw)
    print(f"\n[chaos] fault-plan seed = {seed} "
          f"(replay with: pytest --chaos-seed={seed})")
    return seed


@pytest.fixture
def small_grid() -> Grid:
    return Grid(nx=24, nr=16)


@pytest.fixture
def unit_grid() -> Grid:
    return Grid(nx=16, nr=16, length_x=1.0, length_r=1.0)


@pytest.fixture
def profile() -> JetProfile:
    return JetProfile()


@pytest.fixture
def jet_state(small_grid, profile) -> FlowState:
    from repro.scenarios import jet_initial_state

    return jet_initial_state(small_grid, profile)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20260706)


@pytest.fixture
def tiny_jet():
    """A small viscous jet scenario, fresh per test."""
    return jet_scenario(nx=40, nr=20, viscous=True)


@pytest.fixture
def advection():
    return periodic_advection_scenario(n=24)


def random_physical_state(grid: Grid, rng: np.random.Generator) -> FlowState:
    """A random but physically valid flow state on the grid."""
    shape = grid.shape
    rho = 0.5 + rng.random(shape)
    u = rng.uniform(-1.0, 1.0, shape)
    v = rng.uniform(-1.0, 1.0, shape)
    p = 0.3 + rng.random(shape)
    return FlowState.from_primitive(grid, rho, u, v, p)
