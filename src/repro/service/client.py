"""Client for the Unix-socket run service (``repro submit`` / ``jobs``).

One connection per call; ``watch`` holds its connection open and yields
each streamed status line.  Results come back as real objects: the client
reads the payload path from the server's reply and unpickles it from the
shared filesystem.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
from typing import Any, Iterator

from .server import default_socket_path

__all__ = ["ServiceClient", "ServiceUnavailable"]


class ServiceUnavailable(ConnectionError):
    """No service is listening on the control socket."""


class ServiceClient:
    """Talk to a running ``repro serve`` over its Unix socket."""

    def __init__(
        self,
        socket_path: str | os.PathLike | None = None,
        timeout: float | None = None,
    ) -> None:
        self.socket_path = str(socket_path or default_socket_path())
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _connect(self) -> socket.socket:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            s.settimeout(self.timeout)
        try:
            s.connect(self.socket_path)
        except (FileNotFoundError, ConnectionRefusedError) as exc:
            s.close()
            raise ServiceUnavailable(
                f"no run service listening on {self.socket_path} "
                "(start one with: repro serve)"
            ) from exc
        return s

    def _call(self, op: str, **kw) -> dict:
        with self._connect() as s:
            fh = s.makefile("rwb")
            fh.write(json.dumps({"op": op, **kw}).encode() + b"\n")
            fh.flush()
            line = fh.readline()
        if not line:
            raise ConnectionError(f"service closed the connection mid-{op}")
        resp = json.loads(line)
        if not resp.get("ok"):
            raise RuntimeError(resp.get("error", f"{op} failed"))
        return resp

    # -- ops -----------------------------------------------------------------

    def ping(self) -> dict:
        return self._call("ping")

    def submit(self, request, context=None) -> dict:
        """Submit a RunRequest / ExperimentRequest (or wire dict); returns
        the job record.

        A :class:`~repro.obs.TraceContext` is minted here (origin
        ``"client"``) unless one is passed in, so the job's whole
        execution — service, worker, every forked rank — shares this
        client call's trace id.
        """
        from ..obs import TraceContext

        if context is None:
            context = TraceContext.mint(origin="client")
        wire = request if isinstance(request, dict) else request.to_dict()
        ctx = context if isinstance(context, dict) else context.to_dict()
        return self._call("submit", request=wire, context=ctx)["job"]

    def jobs(self) -> list[dict]:
        return self._call("jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._call("status", job_id=job_id)["job"]

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        return self._call("wait", job_id=job_id, timeout=timeout)["job"]

    def watch(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict]:
        """Yield job snapshots as the service streams transitions."""
        with self._connect() as s:
            fh = s.makefile("rwb")
            fh.write(
                json.dumps(
                    {"op": "watch", "job_id": job_id, "timeout": timeout}
                ).encode()
                + b"\n"
            )
            fh.flush()
            for line in fh:
                resp = json.loads(line)
                if not resp.get("ok"):
                    raise RuntimeError(resp.get("error", "watch failed"))
                yield resp["job"]
                if resp.get("final"):
                    return

    def top(self) -> dict:
        """Live service utilization: queue depth, busy workers, dedupe
        hit rate, and per-running-job step rates / balance verdicts."""
        return self._call("top")["top"]

    def tail(
        self, job_id: str, timeout: float | None = None
    ) -> Iterator[dict]:
        """Yield the job's per-step telemetry records as they stream."""
        with self._connect() as s:
            fh = s.makefile("rwb")
            fh.write(
                json.dumps(
                    {"op": "tail", "job_id": job_id, "timeout": timeout}
                ).encode()
                + b"\n"
            )
            fh.flush()
            for line in fh:
                resp = json.loads(line)
                if not resp.get("ok"):
                    raise RuntimeError(resp.get("error", "tail failed"))
                if resp.get("final"):
                    return
                yield resp["record"]

    def result(self, job_id: str, timeout: float | None = None) -> Any:
        """The completed job's payload (RunResult / experiment text)."""
        resp = self._call("result", job_id=job_id, timeout=timeout)
        with open(resp["payload_path"], "rb") as fh:
            return pickle.load(fh)

    def report(self, job_id: str, timeout: float | None = None) -> dict:
        """The completed job's manifest (PerfReport dict for runs)."""
        return self._call("result", job_id=job_id, timeout=timeout)["report"]

    def shutdown(self) -> None:
        self._call("shutdown")
