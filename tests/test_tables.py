"""Tables 1 and 2 generators."""

import pytest

from repro.analysis.tables import (
    PAPER_EULER,
    PAPER_NS,
    measured_characteristics,
    table1,
    table2,
)


class TestTable1:
    def test_paper_rows(self):
        out = table1("paper")
        assert "145,000" in out
        assert "80,000" in out
        assert "125" in out
        assert "Euler" in out and "N-S" in out

    def test_unknown_source(self):
        with pytest.raises(ValueError):
            table1("guessed")

    def test_measured_characteristics(self):
        """Short instrumented run of the real distributed solver."""
        ns = measured_characteristics(viscous=True, nx=40, probe_steps=2)
        eu = measured_characteristics(viscous=False, nx=40, probe_steps=2)
        # Our kernels: NS roughly double Euler's work.
        assert 1.5 < ns.total_flops / eu.total_flops < 3.0
        # NS communicates more (velocity/temperature ghosts).
        assert ns.volume_bytes_per_proc > eu.volume_bytes_per_proc
        assert ns.startups_per_proc > eu.startups_per_proc
        # Same order of magnitude as the paper's Table 1.
        assert 0.2 < ns.total_flops / PAPER_NS.total_flops < 1.5
        assert 0.5 < ns.volume_bytes_per_proc / PAPER_NS.volume_bytes_per_proc < 4.0


class TestTable2:
    def test_paper_values_reproduced_exactly(self):
        out = table2()
        # The FPs/Byte column of the paper: 580/290/145/73 for NS.
        for v in ("580", "290", "145", "72"):
            assert v in out
        # Euler: 405/203/101/51.
        for v in ("405", "203", "101", "51"):
            assert v in out
        # FPs/Start-up: 906K half-ladder.
        assert "906K" in out and "453K" in out and "113K" in out
        assert "642K" in out and "321K" in out

    def test_p1_infinite(self):
        assert "inf" in table2(procs=(1, 2))
