"""Core tracing primitives: spans, events, counters, and the global tracer.

Design constraints (see ISSUE 1):

* **Cheap when off.**  The default active tracer is a :class:`NullTracer`
  whose ``span()`` returns one shared no-op context manager; instrumented
  hot paths cost a function call and a branch, nothing more.
* **Deterministic when driven by a deterministic clock.**  Every record
  carries a global monotone sequence number assigned at span *start*;
  exports sort by ``(t0, seq)``, so two runs over the discrete-event
  engine's clock serialize byte-identically.
* **Thread-safe.**  The virtual cluster runs one thread per rank; appends
  go through a lock-free path (CPython list.append / itertools.count are
  atomic) and per-thread state (current rank, span stack) lives in
  ``threading.local``.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceContext:
    """Distributed trace identity, carried across process/socket hops.

    Minted once when a :class:`~repro.request.RunRequest` is submitted and
    propagated through the service wire protocol and the fork-worker job
    queue into every rank's tracer, so the spans of one logical run — on
    the client, the service, the worker, and each rank — share a single
    ``trace_id`` and assemble into one tree in a Perfetto export.

    ``parent_span`` names the span in the *upstream* tier under which this
    tier's spans nest (e.g. the worker runs under ``"service.worker"``).
    """

    trace_id: str
    parent_span: str | None = None
    origin: str = "client"

    @classmethod
    def mint(cls, origin: str = "client") -> "TraceContext":
        """A fresh context with a new random trace id."""
        return cls(trace_id=uuid.uuid4().hex[:16], origin=origin)

    def child(self, parent_span: str, origin: str) -> "TraceContext":
        """The same trace, one tier down (new parent span + origin)."""
        return TraceContext(self.trace_id, parent_span, origin)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "parent_span": self.parent_span,
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "TraceContext":
        return cls(
            trace_id=doc["trace_id"],
            parent_span=doc.get("parent_span"),
            origin=doc.get("origin", "client"),
        )


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (a named, timed interval on one rank)."""

    name: str
    cat: str
    rank: int
    t0: float
    t1: float
    seq: int
    parent: str | None = None
    args: tuple = ()
    """Extra attributes as a sorted tuple of ``(key, value)`` pairs."""

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class EventRecord:
    """An instant event (zero duration)."""

    name: str
    cat: str
    rank: int
    t: float
    seq: int
    args: tuple = ()


@dataclass
class Trace:
    """The collected records of one traced run."""

    spans: list[SpanRecord] = field(default_factory=list)
    events: list[EventRecord] = field(default_factory=list)
    counters: dict[tuple[int, str], float] = field(default_factory=dict)
    """``(rank, counter_name) -> accumulated value``."""
    meta: dict[str, object] = field(default_factory=dict)

    def ordered_spans(self) -> list[SpanRecord]:
        """Spans in monotone ``(t0, seq)`` order."""
        return sorted(self.spans, key=lambda s: (s.t0, s.seq))

    def ordered_events(self) -> list[EventRecord]:
        return sorted(self.events, key=lambda e: (e.t, e.seq))

    def ranks(self) -> list[int]:
        seen = {s.rank for s in self.spans}
        seen.update(e.rank for e in self.events)
        seen.update(r for r, _ in self.counters)
        return sorted(seen)

    def counter(self, rank: int, name: str) -> float:
        return self.counters.get((rank, name), 0.0)

    def spans_named(self, name: str, rank: int | None = None) -> list[SpanRecord]:
        return [
            s
            for s in self.spans
            if s.name == name and (rank is None or s.rank == rank)
        ]

    def events_named(self, name: str, rank: int | None = None) -> list[EventRecord]:
        """Instant events with this name (optionally one rank), in record
        order; name may be a prefix ending in ``.`` to select a family
        (e.g. ``"fault."`` matches every injected-fault event)."""
        if name.endswith("."):
            match = lambda n: n.startswith(name)
        else:
            match = lambda n: n == name
        return [
            e
            for e in self.events
            if match(e.name) and (rank is None or e.rank == rank)
        ]

    def total(self, name: str, rank: int | None = None) -> float:
        """Summed duration of all spans with this name (optionally one rank)."""
        return sum(s.duration for s in self.spans_named(name, rank))


class _Span:
    """Context manager recording one span into the owning tracer."""

    __slots__ = ("tracer", "name", "cat", "rank", "args", "t0", "seq", "parent")

    def __init__(self, tracer: "Tracer", name: str, cat: str, rank: int, args: tuple):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.rank = rank
        self.args = args

    def __enter__(self) -> "_Span":
        tr = self.tracer
        stack = tr._stack()
        self.parent = stack[-1] if stack else None
        stack.append(self.name)
        self.seq = next(tr._seq)
        self.t0 = tr.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tr = self.tracer
        t1 = tr.clock()
        stack = tr._stack()
        if stack and stack[-1] == self.name:
            stack.pop()
        tr.trace.spans.append(
            SpanRecord(
                name=self.name,
                cat=self.cat,
                rank=self.rank,
                t0=self.t0,
                t1=t1,
                seq=self.seq,
                parent=self.parent,
                args=self.args,
            )
        )


class _NullSpan:
    """Shared do-nothing context manager (the fast path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Inert tracer: every operation is a no-op.  The global default."""

    enabled = False
    trace = None
    context = None

    __slots__ = ()

    def span(self, name, cat="solver", rank=None, **args):
        return _NULL_SPAN

    def instant(self, name, cat="event", rank=None, ts=None, **args) -> None:
        return None

    def count(self, name, value, rank=0) -> None:
        return None

    def add_span(self, name, t0, t1, cat="solver", rank=0, parent=None, **args) -> None:
        return None

    def bind_rank(self, rank) -> None:
        return None


class Tracer:
    """Collects spans/events/counters into a :class:`Trace`.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time in seconds.
        Defaults to ``time.perf_counter`` (wall clock).  Pass a
        deterministic clock (e.g. ``lambda: engine.now``) for byte-stable
        exports; records built from the DES timelines use explicit
        timestamps and bypass the clock entirely.
    name:
        Stored in ``trace.meta['name']`` and carried into exports.
    context:
        Optional :class:`TraceContext` stamping this tracer's records with
        a distributed trace identity (``trace.meta['trace_id']`` etc.).
    """

    enabled = True

    def __init__(
        self,
        clock=time.perf_counter,
        name: str = "",
        context: TraceContext | None = None,
    ) -> None:
        self.clock = clock
        self.trace = Trace(meta={"name": name} if name else {})
        self._seq = itertools.count()
        self._tls = threading.local()
        self._counter_lock = threading.Lock()
        self.context = None
        if context is not None:
            self.adopt_context(context)

    def adopt_context(self, context: TraceContext) -> None:
        """Join a distributed trace: stamp its identity into ``meta``."""
        self.context = context
        meta = self.trace.meta
        meta["trace_id"] = context.trace_id
        meta["trace_origin"] = context.origin
        if context.parent_span is not None:
            meta["parent_span"] = context.parent_span

    # -- per-thread state -----------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def bind_rank(self, rank: int) -> None:
        """Set the default rank for spans opened from the calling thread
        (the virtual cluster binds each rank thread once)."""
        self._tls.rank = rank

    def _rank(self, rank: int | None) -> int:
        if rank is not None:
            return rank
        return getattr(self._tls, "rank", 0)

    # -- recording ------------------------------------------------------------
    def span(self, name: str, cat: str = "solver", rank: int | None = None, **args):
        """Open a span; use as a context manager."""
        return _Span(
            self, name, cat, self._rank(rank), tuple(sorted(args.items()))
        )

    def instant(
        self,
        name: str,
        cat: str = "event",
        rank: int | None = None,
        ts: float | None = None,
        **args,
    ) -> None:
        """Record an instant event (``ts=None`` reads the clock)."""
        self.trace.events.append(
            EventRecord(
                name=name,
                cat=cat,
                rank=self._rank(rank),
                t=self.clock() if ts is None else ts,
                seq=next(self._seq),
                args=tuple(sorted(args.items())),
            )
        )

    def count(self, name: str, value: float, rank: int | None = None) -> None:
        """Accumulate ``value`` into the per-rank counter ``name``."""
        key = (self._rank(rank), name)
        with self._counter_lock:
            self.trace.counters[key] = self.trace.counters.get(key, 0.0) + value

    def add_span(
        self,
        name: str,
        t0: float,
        t1: float,
        cat: str = "solver",
        rank: int = 0,
        parent: str | None = None,
        **args,
    ) -> None:
        """Append a pre-timed span (used when converting DES timelines)."""
        self.trace.spans.append(
            SpanRecord(
                name=name,
                cat=cat,
                rank=rank,
                t0=t0,
                t1=t1,
                seq=next(self._seq),
                parent=parent,
                args=tuple(sorted(args.items())),
            )
        )


#: Process-wide active tracer; hot paths read it via :func:`get_tracer`.
_NULL = NullTracer()
_active: Tracer | NullTracer = _NULL


def get_tracer() -> Tracer | NullTracer:
    """The active tracer (a :class:`NullTracer` unless one was installed)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` globally (``None`` restores the null tracer)."""
    global _active
    _active = tracer if tracer is not None else _NULL
    return _active


@contextmanager
def use_tracer(tracer: Tracer | None):
    """Scoped :func:`set_tracer`: restores the previous tracer on exit."""
    global _active
    previous = _active
    _active = tracer if tracer is not None else _NULL
    try:
        yield _active
    finally:
        _active = previous
