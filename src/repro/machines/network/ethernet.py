"""Shared-bus Ethernet (LACE's 10 Mbps 'parallel use' segment).

Every transfer holds the single shared bus, so aggregate demand beyond
~10 Mbps queues — reproducing the paper's Section 7.1 argument that eight
processors generating ~9 Mb/s saturate the medium and that "Ethernet's
performance gets steadily worse beyond 8 processors".
"""

from __future__ import annotations

from .base import Network


class EthernetNetwork(Network):
    """CSMA shared bus."""

    def __init__(
        self,
        nnodes: int,
        bandwidth_bps: float = 10e6,
        efficiency: float = 0.85,
        frame_overhead_bytes: int = 90,
        latency: float = 0.4e-3,
    ) -> None:
        self.name = "Ethernet"
        self.nnodes = nnodes
        self.bandwidth_bps = bandwidth_bps
        #: Usable fraction of the raw rate (CSMA/CD backoff, interframe gaps).
        self.efficiency = efficiency
        #: Ethernet+IP+UDP header bytes added per message by the PVM path.
        self.frame_overhead_bytes = frame_overhead_bytes
        self.latency = latency

    def link_ids(self, src: int, dst: int) -> list[str]:
        return ["bus"]

    def capacities(self) -> dict[str, int]:
        return {"bus": 1}

    def transfer_time(self, nbytes: int) -> float:
        wire_bytes = nbytes + self.frame_overhead_bytes
        return wire_bytes * 8.0 / (self.bandwidth_bps * self.efficiency)

    def saturation_bandwidth(self) -> float:
        return self.bandwidth_bps * self.efficiency / 8.0
